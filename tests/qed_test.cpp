#include "causal/qed.h"

#include <gtest/gtest.h>

#include "core/rng.h"
#include "stats/binomial.h"

namespace bblab::causal {
namespace {

Unit unit(double outcome, std::vector<double> covs) {
  Unit u;
  u.outcome = outcome;
  u.covariates = std::move(covs);
  return u;
}

void build_pools(double effect, std::size_t n, Rng& rng, std::vector<Unit>& treated,
                 std::vector<Unit>& control) {
  for (std::size_t i = 0; i < n; ++i) {
    const double conf_t = rng.lognormal(2.0, 0.6);
    const double conf_c = rng.lognormal(2.0, 0.6);
    treated.push_back(unit(conf_t * effect * rng.lognormal(0.0, 0.4), {conf_t}));
    control.push_back(unit(conf_c * rng.lognormal(0.0, 0.4), {conf_c}));
  }
}

TEST(SignTest, ExactSmallCases) {
  // 10 trials, 8 wins: two-sided p = 2 * P(X >= 8) = 2 * 56/1024.
  EXPECT_NEAR(sign_test_p(8, 10), 2.0 * 56.0 / 1024.0, 1e-12);
  // Perfectly balanced: p = 1 (or slightly above before the clamp).
  EXPECT_DOUBLE_EQ(sign_test_p(5, 10), 1.0);
  EXPECT_DOUBLE_EQ(sign_test_p(0, 0), 1.0);
}

TEST(SignTest, SymmetricInWinsLosses) {
  for (std::uint64_t w : {0ULL, 3ULL, 10ULL, 17ULL}) {
    EXPECT_NEAR(sign_test_p(w, 20), sign_test_p(20 - w, 20), 1e-12) << w;
  }
}

TEST(QuasiExperiment, DetectsPlantedEffectWithSizeEstimate) {
  Rng rng{3};
  std::vector<Unit> treated;
  std::vector<Unit> control;
  build_pools(1.5, 1200, rng, treated, control);
  const QuasiExperiment qed{};
  const auto result = qed.run("planted", treated, control);
  ASSERT_GT(result.pairs, 400u);
  EXPECT_GT(result.net_score, 0.10) << result.to_string();
  EXPECT_TRUE(result.significant);
  // ATE positive, CI excludes zero, ordered correctly.
  EXPECT_GT(result.ate, 0.0);
  EXPECT_GT(result.ate_ci_lo, 0.0);
  EXPECT_LE(result.ate_ci_lo, result.ate);
  EXPECT_GE(result.ate_ci_hi, result.ate);
  EXPECT_GT(result.median_effect, 0.0);
}

TEST(QuasiExperiment, NullEffectIsInsignificant) {
  Rng rng{5};
  std::vector<Unit> treated;
  std::vector<Unit> control;
  build_pools(1.0, 1200, rng, treated, control);
  const auto result = QuasiExperiment{}.run("null", treated, control);
  ASSERT_GT(result.pairs, 400u);
  EXPECT_NEAR(result.net_score, 0.0, 0.08) << result.to_string();
  EXPECT_FALSE(result.significant);
  // CI straddles zero.
  EXPECT_LT(result.ate_ci_lo, 0.0 + 1e-12);
  EXPECT_GT(result.ate_ci_hi, 0.0 - 1e-12);
}

TEST(QuasiExperiment, DeterministicGivenSeed) {
  Rng rng{7};
  std::vector<Unit> treated;
  std::vector<Unit> control;
  build_pools(1.3, 300, rng, treated, control);
  const auto a = QuasiExperiment{}.run("d", treated, control);
  const auto b = QuasiExperiment{}.run("d", treated, control);
  EXPECT_DOUBLE_EQ(a.ate_ci_lo, b.ate_ci_lo);
  EXPECT_DOUBLE_EQ(a.ate_ci_hi, b.ate_ci_hi);
}

TEST(QuasiExperiment, EmptyPoolsAreGraceful) {
  const auto result = QuasiExperiment{}.run("empty", {}, {});
  EXPECT_EQ(result.pairs, 0u);
  EXPECT_FALSE(result.significant);
  EXPECT_DOUBLE_EQ(result.sign_p_value, 1.0);
}

TEST(QuasiExperiment, AgreesInDirectionWithNaturalExperiment) {
  // The two designs should agree on direction for a clear planted effect.
  Rng rng{11};
  std::vector<Unit> treated;
  std::vector<Unit> control;
  build_pools(1.6, 800, rng, treated, control);
  const auto qed = QuasiExperiment{}.run("q", treated, control);
  EXPECT_GT(qed.net_score, 0.0);
  // Net score and the NE fraction are linked: frac = (net+1)/2 over
  // decisive pairs.
  EXPECT_GT((qed.net_score + 1.0) / 2.0, 0.55);
}

}  // namespace
}  // namespace bblab::causal
