#include "core/time.h"

#include <gtest/gtest.h>

namespace bblab {
namespace {

TEST(SimClock, YearAdvancesWithSimYears) {
  const SimClock clock{2011};
  EXPECT_EQ(clock.year(0.0), 2011);
  EXPECT_EQ(clock.year(kYear - 1.0), 2011);
  EXPECT_EQ(clock.year(kYear), 2012);
  EXPECT_EQ(clock.year(2.5 * kYear), 2013);
}

TEST(SimClock, HourOfDayWraps) {
  EXPECT_DOUBLE_EQ(SimClock::hour_of_day(0.0), 0.0);
  EXPECT_DOUBLE_EQ(SimClock::hour_of_day(kHour * 13.5), 13.5);
  EXPECT_DOUBLE_EQ(SimClock::hour_of_day(kDay + kHour * 2), 2.0);
}

TEST(SimClock, DayOfWeekCycles) {
  const SimClock clock{2011, 0};
  EXPECT_EQ(clock.day_of_week(0.0), 0);
  EXPECT_EQ(clock.day_of_week(kDay * 4), 4);
  EXPECT_EQ(clock.day_of_week(kDay * 7), 0);
  EXPECT_EQ(clock.day_of_week(kDay * 13), 6);
}

TEST(SimClock, WeekendDetection) {
  const SimClock clock{2011, 0};  // day 0 = Monday
  EXPECT_FALSE(clock.is_weekend(0.0));
  EXPECT_FALSE(clock.is_weekend(kDay * 4 + kHour));  // Friday
  EXPECT_TRUE(clock.is_weekend(kDay * 5 + kHour));   // Saturday
  EXPECT_TRUE(clock.is_weekend(kDay * 6 + kHour));   // Sunday
}

TEST(SimClock, EpochWeekdayShiftsCycle) {
  const SimClock clock{2011, 5};  // simulation starts on a Saturday
  EXPECT_TRUE(clock.is_weekend(0.0));
  EXPECT_FALSE(clock.is_weekend(kDay * 2));  // Monday
}

TEST(SimClock, LabelFormat) {
  const SimClock clock{2011};
  EXPECT_EQ(clock.label(0.0), "2011-w00 day0 00:00");
  EXPECT_EQ(clock.label(kYear + kWeek * 3 + kDay * 2 + kHour * 14 + kMinute * 30),
            "2012-w03 day2 14:30");
}

TEST(TimeConstants, AreConsistent) {
  EXPECT_DOUBLE_EQ(kDay, 86400.0);
  EXPECT_DOUBLE_EQ(kWeek, 7 * kDay);
  EXPECT_DOUBLE_EQ(kYear, 52 * kWeek);
}

}  // namespace
}  // namespace bblab
