// Minimal recursive-descent JSON parser for test assertions.
//
// Just enough JSON to validate the observability outputs (run reports,
// Chrome traces): objects, arrays, strings with the escapes our writers
// emit, numbers, booleans, null. Throws std::runtime_error on any
// malformed input, which is exactly what the tests want to detect.
#pragma once

#include <cctype>
#include <cstddef>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

namespace minijson {

class Value;
using Object = std::map<std::string, Value>;
using Array = std::vector<Value>;

class Value {
 public:
  std::variant<std::nullptr_t, bool, double, std::string,
               std::shared_ptr<Object>, std::shared_ptr<Array>>
      v{nullptr};

  [[nodiscard]] bool is_object() const {
    return std::holds_alternative<std::shared_ptr<Object>>(v);
  }
  [[nodiscard]] bool is_array() const {
    return std::holds_alternative<std::shared_ptr<Array>>(v);
  }
  [[nodiscard]] bool is_string() const {
    return std::holds_alternative<std::string>(v);
  }
  [[nodiscard]] bool is_number() const { return std::holds_alternative<double>(v); }

  [[nodiscard]] const Object& object() const {
    if (!is_object()) throw std::runtime_error{"not an object"};
    return *std::get<std::shared_ptr<Object>>(v);
  }
  [[nodiscard]] const Array& array() const {
    if (!is_array()) throw std::runtime_error{"not an array"};
    return *std::get<std::shared_ptr<Array>>(v);
  }
  [[nodiscard]] const std::string& str() const {
    if (!is_string()) throw std::runtime_error{"not a string"};
    return std::get<std::string>(v);
  }
  [[nodiscard]] double num() const {
    if (!is_number()) throw std::runtime_error{"not a number"};
    return std::get<double>(v);
  }

  /// Object member access; throws if absent or not an object.
  [[nodiscard]] const Value& at(const std::string& key) const {
    const Object& o = object();
    const auto it = o.find(key);
    if (it == o.end()) throw std::runtime_error{"missing key: " + key};
    return it->second;
  }
  [[nodiscard]] bool has(const std::string& key) const {
    return is_object() && object().count(key) != 0;
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : s_{text} {}

  Value parse() {
    Value v = value();
    skip_ws();
    if (i_ != s_.size()) throw std::runtime_error{"trailing content"};
    return v;
  }

 private:
  const std::string& s_;
  std::size_t i_{0};

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error{what + " at offset " + std::to_string(i_)};
  }

  void skip_ws() {
    while (i_ < s_.size() && (s_[i_] == ' ' || s_[i_] == '\t' || s_[i_] == '\n' ||
                              s_[i_] == '\r')) {
      ++i_;
    }
  }

  char peek() {
    if (i_ >= s_.size()) fail("unexpected end");
    return s_[i_];
  }

  void expect(char c) {
    if (i_ >= s_.size() || s_[i_] != c) fail(std::string{"expected '"} + c + "'");
    ++i_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::char_traits<char>::length(lit);
    if (s_.compare(i_, n, lit) != 0) return false;
    i_ += n;
    return true;
  }

  Value value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return Value{string()};
    if (c == 't') {
      if (!consume_literal("true")) fail("bad literal");
      return Value{true};
    }
    if (c == 'f') {
      if (!consume_literal("false")) fail("bad literal");
      return Value{false};
    }
    if (c == 'n') {
      if (!consume_literal("null")) fail("bad literal");
      return Value{nullptr};
    }
    return number();
  }

  Value object() {
    expect('{');
    auto obj = std::make_shared<Object>();
    skip_ws();
    if (peek() == '}') {
      ++i_;
      return Value{std::move(obj)};
    }
    for (;;) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      (*obj)[std::move(key)] = value();
      skip_ws();
      if (peek() == ',') {
        ++i_;
        continue;
      }
      expect('}');
      return Value{std::move(obj)};
    }
  }

  Value array() {
    expect('[');
    auto arr = std::make_shared<Array>();
    skip_ws();
    if (peek() == ']') {
      ++i_;
      return Value{std::move(arr)};
    }
    for (;;) {
      arr->push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++i_;
        continue;
      }
      expect(']');
      return Value{std::move(arr)};
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      if (i_ >= s_.size()) fail("unterminated string");
      const char c = s_[i_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (i_ >= s_.size()) fail("unterminated escape");
        const char e = s_[i_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (i_ + 4 > s_.size()) fail("short \\u escape");
            // Control characters only in our writers; keep the raw code
            // point truncated to a byte, enough for round-trip checks.
            const std::string hex = s_.substr(i_, 4);
            i_ += 4;
            out += static_cast<char>(std::stoi(hex, nullptr, 16) & 0xFF);
            break;
          }
          default: fail("bad escape");
        }
        continue;
      }
      out += c;
    }
  }

  Value number() {
    const std::size_t start = i_;
    if (i_ < s_.size() && (s_[i_] == '-' || s_[i_] == '+')) ++i_;
    bool digits = false;
    while (i_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[i_])) != 0 || s_[i_] == '.' ||
            s_[i_] == 'e' || s_[i_] == 'E' || s_[i_] == '-' || s_[i_] == '+')) {
      if (std::isdigit(static_cast<unsigned char>(s_[i_])) != 0) digits = true;
      ++i_;
    }
    if (!digits) fail("bad number");
    return Value{std::stod(s_.substr(start, i_ - start))};
  }
};

inline Value parse(const std::string& text) { return Parser{text}.parse(); }

}  // namespace minijson
