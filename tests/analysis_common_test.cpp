#include "analysis/common.h"

#include <gtest/gtest.h>

#include <cmath>

namespace bblab::analysis {
namespace {

dataset::UserRecord record(const std::string& country, double cap_mbps, double rtt,
                           double loss, double mean_kbps, double peak_kbps) {
  dataset::UserRecord r;
  r.country_code = country;
  r.capacity = Rate::from_mbps(cap_mbps);
  r.rtt_ms = rtt;
  r.loss = loss;
  r.access_price = MoneyPpp::usd(20.0);
  r.upgrade_cost_per_mbps = 1.0;
  r.usage.mean_down = Rate::from_kbps(mean_kbps);
  r.usage.peak_down = Rate::from_kbps(peak_kbps);
  r.usage.mean_down_no_bt = Rate::from_kbps(mean_kbps * 0.8);
  r.usage.peak_down_no_bt = Rate::from_kbps(peak_kbps * 0.8);
  return r;
}

TEST(AnalysisCommon, MetricSelectors) {
  const auto r = record("US", 10, 40, 0.001, 100, 900);
  EXPECT_DOUBLE_EQ(mean_down_bps(r, true), 100e3);
  EXPECT_DOUBLE_EQ(mean_down_bps(r, false), 80e3);
  EXPECT_DOUBLE_EQ(peak_down_bps(r, true), 900e3);
  EXPECT_DOUBLE_EQ(peak_down_bps(r, false), 720e3);
}

TEST(AnalysisCommon, FilterAndColumn) {
  const auto a = record("US", 10, 40, 0.001, 100, 900);
  const auto b = record("JP", 50, 30, 0.0004, 200, 1500);
  const std::vector<RecordPtr> records{&a, &b};
  const auto us = filter(records, [](const dataset::UserRecord& r) {
    return r.country_code == "US";
  });
  ASSERT_EQ(us.size(), 1u);
  const auto caps =
      column(records, [](const dataset::UserRecord& r) { return r.capacity.mbps(); });
  EXPECT_EQ(caps, (std::vector<double>{10.0, 50.0}));
}

TEST(AnalysisCommon, MakeUnitsSkipsNonFinite) {
  auto good = record("US", 10, 40, 0.001, 100, 900);
  auto bad = record("AF", 1, 300, 0.01, 50, 400);
  bad.upgrade_cost_per_mbps = std::nan("");  // weakly-correlated market
  const std::vector<RecordPtr> records{&good, &bad};
  const auto units =
      make_units(records, [](const dataset::UserRecord& r) { return peak_down_bps(r, false); },
                 covariates_quality_and_market());
  ASSERT_EQ(units.size(), 1u);
  EXPECT_EQ(units[0].tag, 0u);
  EXPECT_EQ(units[0].covariates.size(), 4u);
  EXPECT_DOUBLE_EQ(units[0].covariates[0], 40.0);   // rtt
  EXPECT_DOUBLE_EQ(units[0].covariates[2], 20.0);   // access price
}

TEST(AnalysisCommon, CovariateSetDimensions) {
  EXPECT_EQ(covariates_quality_and_market().size(), 4u);
  EXPECT_EQ(covariates_capacity_and_market().size(), 3u);
  EXPECT_EQ(covariates_capacity_quality().size(), 3u);
  EXPECT_EQ(covariates_quality().size(), 2u);
  EXPECT_EQ(covariates_price_experiment().size(), 4u);
  EXPECT_EQ(covariates_upgrade_cost_experiment().size(), 4u);
  EXPECT_EQ(covariates_latency_experiment().size(), 3u);
  EXPECT_EQ(covariates_loss_experiment().size(), 3u);
}

TEST(AnalysisCommon, PeakUtilization) {
  auto r = record("US", 10, 40, 0.001, 100, 2500);
  EXPECT_NEAR(r.peak_utilization(), 0.25, 1e-12);
  EXPECT_NEAR(r.peak_utilization_no_bt(), 0.20, 1e-12);
  r.capacity = Rate{};
  EXPECT_DOUBLE_EQ(r.peak_utilization(), 0.0);
}

}  // namespace
}  // namespace bblab::analysis
