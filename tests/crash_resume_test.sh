#!/usr/bin/env bash
# Crash/resume acceptance check for the checkpointed execution layer:
# SIGKILL the generator at randomized filesystem-operation indices (the
# kill@N fault fires mid-write, leaving torn segments and stale tmp
# files), resume, and demand the final dataset be byte-identical — by
# md5, at 1 / 2 / 8 threads — to an uninterrupted run. Also checks the
# injected-crash exit code (64) and the degraded-run exit code (4) with
# a clean resume healing the quarantined shard.
set -u

BBLAB=$1
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
ARGS="--seed 99 --scale 0.02 --days 0.3"
fails=0

fail() {
  echo "FAIL: $*"
  fails=1
}

md5_tree() {
  (cd "$1" && find . -type f | sort | xargs md5sum) | md5sum | cut -d' ' -f1
}

for t in 1 2 8; do
  "$BBLAB" generate $ARGS --threads "$t" --out "$WORK/base$t" >/dev/null 2>&1 \
    || fail "baseline generate --threads $t exited non-zero"
  base=$(md5_tree "$WORK/base$t")
  echo "baseline md5 @$t threads: $base"

  # --- SIGKILL at randomized op indices, then resume ------------------------
  ckpt="$WORK/ckpt_kill$t"
  for k in 3 9 17 33 65 $((RANDOM % 800 + 100)); do
    "$BBLAB" generate $ARGS --threads "$t" --checkpoint "$ckpt" --resume \
      --fs-faults "kill@$k" --out "$WORK/killed" >/dev/null 2>&1
    code=$?
    # 137 = killed mid-run; 0 = the op index was past the end of the run
    # (everything already checkpointed); 4 would mean a shard was lost,
    # which a SIGKILL must never cause.
    if [ "$code" -ne 137 ] && [ "$code" -ne 0 ]; then
      fail "kill@$k @$t threads: exit code $code, want 137 or 0"
    fi
  done
  "$BBLAB" generate $ARGS --threads "$t" --checkpoint "$ckpt" --resume \
    --out "$WORK/resumed$t" >/dev/null 2>&1 \
    || fail "final resume @$t threads exited non-zero"
  got=$(md5_tree "$WORK/resumed$t")
  [ "$got" = "$base" ] || fail "resumed md5 @$t threads: $got != $base"
done

# --- injected crash (exception, not signal): distinct exit code 64 ----------
"$BBLAB" generate $ARGS --checkpoint "$WORK/ckpt_crash" --fs-faults crash@9 \
  >/dev/null 2>"$WORK/crash_err"
code=$?
[ "$code" -eq 64 ] || fail "crash@9: exit code $code, want 64"
grep -q "injected crash" "$WORK/crash_err" \
  || fail "crash@9: stderr does not mention the injected crash"
"$BBLAB" generate $ARGS --checkpoint "$WORK/ckpt_crash" --resume \
  --out "$WORK/after_crash" >/dev/null 2>&1 \
  || fail "resume after crash@9 exited non-zero"
got=$(md5_tree "$WORK/after_crash")
[ "$got" = "$(md5_tree "$WORK/base1")" ] || fail "post-crash md5 differs"

# --- permanent I/O failure: degraded completion (4), then resume heals ------
"$BBLAB" generate $ARGS --checkpoint "$WORK/ckpt_deg" --fs-faults enospc@7 \
  --out "$WORK/degraded" >/dev/null 2>&1
code=$?
[ "$code" -eq 4 ] || fail "enospc@7: exit code $code, want 4 (degraded)"
"$BBLAB" generate $ARGS --checkpoint "$WORK/ckpt_deg" --resume \
  --out "$WORK/healed" >/dev/null 2>&1 \
  || fail "healing resume exited non-zero"
got=$(md5_tree "$WORK/healed")
[ "$got" = "$(md5_tree "$WORK/base1")" ] || fail "healed md5 differs"

if [ "$fails" -ne 0 ]; then
  echo "crash_resume_test: FAILED"
  exit 1
fi
echo "crash_resume_test: OK"
