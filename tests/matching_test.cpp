#include "causal/matching.h"

#include <gtest/gtest.h>

#include <set>

#include "core/error.h"
#include "core/rng.h"

namespace bblab::causal {
namespace {

Unit unit(double outcome, std::vector<double> covs) {
  Unit u;
  u.outcome = outcome;
  u.covariates = std::move(covs);
  return u;
}

TEST(WithinCaliper, PaperExamples) {
  const MatcherOptions opt{.caliper = 0.25};
  // "users with latencies of 50 and 62 ms and ... $25 and $30 ... are
  // sufficiently similar" (§3.2).
  EXPECT_TRUE(within_caliper(std::vector<double>{50.0, 25.0},
                             std::vector<double>{62.0, 30.0}, opt));
  // 50 vs 70 ms breaks the caliper (diff 20 > 0.25*70).
  EXPECT_FALSE(within_caliper(std::vector<double>{50.0}, std::vector<double>{70.0}, opt));
}

TEST(WithinCaliper, ZeroValuesMatchViaAbsoluteSlack) {
  const MatcherOptions opt{.caliper = 0.25, .absolute_slack = 1e-4};
  EXPECT_TRUE(within_caliper(std::vector<double>{0.0}, std::vector<double>{5e-5}, opt));
  EXPECT_FALSE(within_caliper(std::vector<double>{0.0}, std::vector<double>{0.01}, opt));
}

TEST(WithinCaliper, DimensionMismatchThrows) {
  EXPECT_THROW(within_caliper(std::vector<double>{1.0}, std::vector<double>{1.0, 2.0},
                              MatcherOptions{}),
               InvalidArgument);
}

TEST(CovariateDistance, ZeroForIdentical) {
  EXPECT_DOUBLE_EQ(
      covariate_distance(std::vector<double>{1.0, 2.0}, std::vector<double>{1.0, 2.0}),
      0.0);
}

TEST(CovariateDistance, ScaleInvariant) {
  // 10% relative difference scores the same at any magnitude.
  const double d_small =
      covariate_distance(std::vector<double>{1.0}, std::vector<double>{1.1});
  const double d_large =
      covariate_distance(std::vector<double>{1000.0}, std::vector<double>{1100.0});
  EXPECT_NEAR(d_small, d_large, 1e-12);
}

TEST(CaliperMatcher, MatchesExactNeighbors) {
  const std::vector<Unit> treated{unit(10, {100.0}), unit(20, {200.0})};
  const std::vector<Unit> control{unit(1, {105.0}), unit(2, {210.0}),
                                  unit(3, {1000.0})};
  const CaliperMatcher matcher;
  const auto pairs = matcher.match(treated, control);
  ASSERT_EQ(pairs.size(), 2u);
  std::set<std::size_t> controls;
  for (const auto& p : pairs) controls.insert(p.control_index);
  EXPECT_EQ(controls, (std::set<std::size_t>{0, 1}));
}

TEST(CaliperMatcher, OneToOneWithoutReplacement) {
  // Two treated users both closest to the same control; only one can get it.
  const std::vector<Unit> treated{unit(1, {100.0}), unit(2, {101.0})};
  const std::vector<Unit> control{unit(0, {100.0}), unit(0, {120.0})};
  const CaliperMatcher matcher;
  const auto pairs = matcher.match(treated, control);
  ASSERT_EQ(pairs.size(), 2u);
  std::set<std::size_t> used_controls;
  std::set<std::size_t> used_treated;
  for (const auto& p : pairs) {
    used_controls.insert(p.control_index);
    used_treated.insert(p.treated_index);
  }
  EXPECT_EQ(used_controls.size(), 2u);
  EXPECT_EQ(used_treated.size(), 2u);
  // The exact-distance pair must get priority: treated 0 <-> control 0.
  EXPECT_EQ(pairs.front().treated_index, 0u);
  EXPECT_EQ(pairs.front().control_index, 0u);
}

TEST(CaliperMatcher, DissimilarUsersStayUnmatched) {
  const std::vector<Unit> treated{unit(1, {10.0, 5.0})};
  const std::vector<Unit> control{unit(2, {10.0, 50.0})};  // second covariate off
  const CaliperMatcher matcher;
  EXPECT_TRUE(matcher.match(treated, control).empty());
}

TEST(CaliperMatcher, TighterCaliperFewerMatches) {
  Rng rng{3};
  std::vector<Unit> treated;
  std::vector<Unit> control;
  for (int i = 0; i < 200; ++i) {
    treated.push_back(unit(rng.uniform(), {rng.lognormal(3.0, 0.8)}));
    control.push_back(unit(rng.uniform(), {rng.lognormal(3.0, 0.8)}));
  }
  const auto loose = CaliperMatcher{MatcherOptions{.caliper = 0.5}}.match(treated, control);
  const auto tight =
      CaliperMatcher{MatcherOptions{.caliper = 0.05}}.match(treated, control);
  EXPECT_GT(loose.size(), tight.size());
  EXPECT_FALSE(tight.empty());
}

TEST(CaliperMatcher, MatchedPairsRespectCaliper) {
  Rng rng{5};
  std::vector<Unit> treated;
  std::vector<Unit> control;
  for (int i = 0; i < 300; ++i) {
    treated.push_back(
        unit(rng.uniform(), {rng.lognormal(2.0, 1.0), rng.uniform(10, 100)}));
    control.push_back(
        unit(rng.uniform(), {rng.lognormal(2.0, 1.0), rng.uniform(10, 100)}));
  }
  const MatcherOptions opt{.caliper = 0.25};
  const auto pairs = CaliperMatcher{opt}.match(treated, control);
  EXPECT_FALSE(pairs.empty());
  for (const auto& p : pairs) {
    EXPECT_TRUE(within_caliper(treated[p.treated_index].covariates,
                               control[p.control_index].covariates, opt));
  }
}

TEST(CaliperMatcher, BalanceImprovesAfterMatching) {
  // Treated group has systematically higher covariate values plus an
  // overlapping region; matching should select the overlap.
  Rng rng{7};
  std::vector<Unit> treated;
  std::vector<Unit> control;
  for (int i = 0; i < 400; ++i) {
    treated.push_back(unit(0.0, {rng.lognormal(2.4, 0.5)}));
    control.push_back(unit(0.0, {rng.lognormal(2.0, 0.5)}));
  }
  const auto pairs = CaliperMatcher{}.match(treated, control);
  ASSERT_GT(pairs.size(), 30u);
  const auto smd = standardized_mean_differences(treated, control, pairs);
  ASSERT_EQ(smd.size(), 1u);
  EXPECT_LT(std::abs(smd[0]), 0.25);  // pre-matching SMD is ~0.8
}

TEST(StandardizedMeanDifferences, EmptyPairs) {
  EXPECT_TRUE(standardized_mean_differences({}, {}, {}).empty());
}

TEST(MatcherOptions, PerCovariateSlackOverrides) {
  MatcherOptions opt;
  opt.absolute_slack = 1e-9;
  opt.absolute_slacks = {1e-9, 2e-4};
  // Covariate 0: tight slack — zero vs 1e-5 fails.
  EXPECT_FALSE(within_caliper(std::vector<double>{0.0, 0.0},
                              std::vector<double>{1e-5, 0.0}, opt));
  // Covariate 1: loss-style slack — zero vs 1e-5 passes.
  EXPECT_TRUE(within_caliper(std::vector<double>{1.0, 0.0},
                             std::vector<double>{1.0, 1e-5}, opt));
  // Beyond the per-covariate list, the scalar default applies.
  opt.absolute_slacks = {5.0};
  EXPECT_TRUE(within_caliper(std::vector<double>{0.0, 1.0},
                             std::vector<double>{4.0, 1.0}, opt));
  EXPECT_FALSE(within_caliper(std::vector<double>{0.0, 1.0},
                              std::vector<double>{4.0, 2.0}, opt));
}

}  // namespace
}  // namespace bblab::causal
