#include "core/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "core/error.h"

namespace bblab {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a{123};
  Rng b{123};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1};
  Rng b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng{7};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng{11};
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng{5};
  std::vector<int> counts(6, 0);
  for (int i = 0; i < 60000; ++i) {
    const auto v = rng.uniform_int(0, 5);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 5);
    ++counts[static_cast<std::size_t>(v)];
  }
  for (const int c : counts) EXPECT_NEAR(c, 10000, 600);
}

TEST(Rng, UniformIntRejectsBadRange) {
  Rng rng{1};
  EXPECT_THROW(rng.uniform_int(3, 2), InvalidArgument);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng{17};
  constexpr int kN = 200000;
  double sum = 0.0;
  double ss = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal();
    sum += x;
    ss += x * x;
  }
  const double mean = sum / kN;
  const double var = ss / kN - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, LognormalMedianIsExpMu) {
  Rng rng{23};
  std::vector<double> xs(50001);
  for (auto& x : xs) x = rng.lognormal(std::log(4.0), 0.8);
  std::nth_element(xs.begin(), xs.begin() + 25000, xs.end());
  EXPECT_NEAR(xs[25000], 4.0, 0.15);
}

TEST(Rng, ExponentialMeanIsInverseLambda) {
  Rng rng{29};
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(0.25);
  EXPECT_NEAR(sum / kN, 4.0, 0.1);
}

TEST(Rng, ExponentialRejectsNonPositiveLambda) {
  Rng rng{1};
  EXPECT_THROW(rng.exponential(0.0), InvalidArgument);
}

TEST(Rng, ParetoRespectsMinimumAndTail) {
  Rng rng{31};
  int above_double = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.pareto(2.0, 1.5);
    ASSERT_GE(x, 2.0);
    if (x > 4.0) ++above_double;
  }
  // P(X > 2*x_min) = 2^-alpha = 0.3536.
  EXPECT_NEAR(static_cast<double>(above_double) / kN, std::pow(2.0, -1.5), 0.01);
}

TEST(Rng, PoissonMeanMatchesSmallAndLarge) {
  Rng rng{37};
  for (const double mean : {0.5, 3.0, 20.0, 200.0}) {
    double sum = 0.0;
    constexpr int kN = 20000;
    for (int i = 0; i < kN; ++i) sum += static_cast<double>(rng.poisson(mean));
    EXPECT_NEAR(sum / kN, mean, std::max(0.05, mean * 0.03)) << "mean=" << mean;
  }
}

TEST(Rng, PoissonZeroMeanIsZero) {
  Rng rng{1};
  EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, WeightedFollowsWeights) {
  Rng rng{41};
  const std::vector<double> weights{1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) ++counts[rng.weighted(weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(kN), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(kN), 0.3, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(kN), 0.6, 0.01);
}

TEST(Rng, WeightedRejectsDegenerateInput) {
  Rng rng{1};
  EXPECT_THROW(rng.weighted(std::vector<double>{}), InvalidArgument);
  EXPECT_THROW(rng.weighted(std::vector<double>{0.0, 0.0}), InvalidArgument);
  EXPECT_THROW(rng.weighted(std::vector<double>{-1.0, 2.0}), InvalidArgument);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng{43};
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, ForkProducesIndependentStreams) {
  Rng parent{99};
  Rng c1 = parent.fork(1);
  Rng c2 = parent.fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (c1.next_u64() == c2.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
  // Forking must not perturb the parent.
  Rng parent2{99};
  (void)parent2.fork(1);
  EXPECT_EQ(parent.next_u64(), parent2.next_u64());
}

// Property sweep: index() is in range for many sizes.
class RngIndexTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RngIndexTest, IndexInRange) {
  Rng rng{GetParam()};
  const std::size_t size = GetParam();
  for (int i = 0; i < 1000; ++i) ASSERT_LT(rng.index(size), size);
}

INSTANTIATE_TEST_SUITE_P(Sizes, RngIndexTest,
                         ::testing::Values(1, 2, 3, 7, 64, 1000, 123457));

}  // namespace
}  // namespace bblab
