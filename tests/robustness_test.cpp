// Graceful-degradation properties of the fault-injected pipeline: an
// injected per-household failure is quarantined rather than fatal, the
// failure-rate threshold aborts a batch that is mostly garbage, and the
// whole degraded run — results, dataset, AND quarantine ledger — stays
// bit-identical across thread counts (the ISSUE's determinism bar).
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "core/error.h"
#include "core/rng.h"
#include "core/thread_pool.h"
#include "dataset/csv.h"
#include "dataset/generator.h"
#include "faults/fault_plan.h"
#include "market/country.h"
#include "measurement/pipeline.h"
#include "netsim/diurnal.h"

namespace bblab {
namespace {

using measurement::BatchOptions;
using measurement::BatchResult;
using measurement::CollectorKind;
using measurement::HouseholdTask;
using measurement::PipelineToolkit;

struct RobustnessFixture {
  SimClock clock{2011};
  netsim::DiurnalModel diurnal{netsim::DiurnalParams{}, clock};
  netsim::WorkloadGenerator workload{diurnal};
  measurement::DasuCollector dasu{measurement::DasuCollectorParams{}, diurnal};
  measurement::GatewayCollector gateway{};
  faults::FaultPlan plan;

  [[nodiscard]] PipelineToolkit kit() const {
    PipelineToolkit k;
    k.workload = &workload;
    k.dasu = &dasu;
    k.gateway = &gateway;
    if (!plan.empty()) k.faults = &plan;
    return k;
  }

  [[nodiscard]] std::vector<HouseholdTask> make_tasks(std::size_t n) const {
    Rng rng{99};
    std::vector<HouseholdTask> tasks;
    tasks.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      HouseholdTask t;
      t.link.down = Rate::from_mbps(rng.uniform(1.0, 50.0));
      t.link.up = Rate::from_mbps(rng.uniform(0.5, 5.0));
      t.link.rtt_ms = rng.uniform(10.0, 300.0);
      t.link.loss = rng.uniform(0.0, 0.01);
      t.workload.intensity = rng.uniform(0.3, 2.0);
      t.bins = 240;  // two hours at 30 s, enough to observe faults
      t.bin_width_s = 30.0;
      t.collector = i % 3 == 0 ? CollectorKind::kGateway : CollectorKind::kDasu;
      t.stream_id = 1000 + i;
      tasks.push_back(t);
    }
    return tasks;
  }
};

TEST(Robustness, InjectedFailureIsQuarantinedNotFatal) {
  RobustnessFixture fx;
  fx.plan = faults::FaultPlan::parse("fail=0.3,seed=11");
  const auto tasks = fx.make_tasks(30);
  core::ThreadPool pool{4};
  BatchOptions options;
  options.isolate_failures = true;

  const auto batch = measurement::parallel_simulate_households(
      fx.kit(), tasks, Rng{2014}, pool, options);

  ASSERT_EQ(batch.results.size(), tasks.size());
  const std::size_t failed = batch.quarantine.quarantined();
  EXPECT_GT(failed, 0u);                 // fail=0.3 over 30 streams: ~certain
  EXPECT_LT(failed, tasks.size());       // and equally certain not all fail
  EXPECT_EQ(batch.quarantine.admitted, tasks.size() - failed);
  EXPECT_EQ(batch.quarantine.count(QuarantineReason::kInjectedFault), failed);

  // Failed slots are flagged and empty; surviving slots carry real data.
  for (std::size_t i = 0; i < batch.results.size(); ++i) {
    if (batch.results[i].failed) {
      EXPECT_EQ(batch.results[i].series.size(), 0u) << i;
    } else {
      EXPECT_GT(batch.results[i].summary.samples, 0u) << i;
    }
  }
  // Quarantine entries identify the household by task index and stream.
  for (const auto& row : batch.quarantine.rows) {
    EXPECT_EQ(row.reason, QuarantineReason::kInjectedFault);
    EXPECT_TRUE(batch.results[row.index].failed) << row.index;
    EXPECT_EQ(row.raw,
              "stream " + std::to_string(tasks[row.index].stream_id));
  }
}

TEST(Robustness, WithoutIsolationInjectedFailureIsFatal) {
  RobustnessFixture fx;
  fx.plan = faults::FaultPlan::parse("fail=1.0");
  const auto tasks = fx.make_tasks(4);
  core::ThreadPool pool{2};
  EXPECT_THROW(measurement::parallel_simulate_households(fx.kit(), tasks,
                                                         Rng{2014}, pool),
               InjectedFault);
}

TEST(Robustness, FailureRateThresholdAbortsBatch) {
  RobustnessFixture fx;
  fx.plan = faults::FaultPlan::parse("fail=1.0");
  const auto tasks = fx.make_tasks(8);
  core::ThreadPool pool{2};
  BatchOptions options;
  options.isolate_failures = true;
  options.max_failure_rate = 0.5;
  EXPECT_THROW(measurement::parallel_simulate_households(fx.kit(), tasks,
                                                         Rng{2014}, pool, options),
               AnalysisError);
}

TEST(Robustness, FaultedBatchInvariantUnderThreadCounts) {
  RobustnessFixture fx;
  fx.plan = faults::FaultPlan::parse(
      "churn=0.4,outage_h=0.5,blackout=0.3,blackout_h=0.25,reset=0.3,"
      "wrap=0.3,skew=0.5,skew_s=45,fail=0.2,seed=3");
  const auto tasks = fx.make_tasks(24);
  BatchOptions options;
  options.isolate_failures = true;

  core::ThreadPool pool1{1};
  const auto serial = measurement::parallel_simulate_households(
      fx.kit(), tasks, Rng{2014}, pool1, options);

  for (const std::size_t threads : {2u, 8u}) {
    core::ThreadPool pool{threads};
    const auto parallel = measurement::parallel_simulate_households(
        fx.kit(), tasks, Rng{2014}, pool, options);
    ASSERT_EQ(parallel.results.size(), serial.results.size());
    for (std::size_t i = 0; i < serial.results.size(); ++i) {
      const auto& a = serial.results[i];
      const auto& b = parallel.results[i];
      ASSERT_EQ(a.failed, b.failed) << i;
      ASSERT_EQ(a.series.size(), b.series.size()) << i;
      for (std::size_t s = 0; s < a.series.size(); ++s) {
        ASSERT_EQ(a.series.samples[s].time, b.series.samples[s].time) << i;
        ASSERT_EQ(a.series.samples[s].down.bps(), b.series.samples[s].down.bps());
        ASSERT_EQ(a.series.samples[s].up.bps(), b.series.samples[s].up.bps());
      }
      ASSERT_EQ(a.summary.mean_down.bps(), b.summary.mean_down.bps()) << i;
      ASSERT_EQ(a.summary.peak_down.bps(), b.summary.peak_down.bps()) << i;
      ASSERT_EQ(a.summary.samples, b.summary.samples) << i;
    }
    // The quarantine ledger itself must be bit-identical too.
    ASSERT_EQ(parallel.quarantine.admitted, serial.quarantine.admitted);
    ASSERT_EQ(parallel.quarantine.quarantined(), serial.quarantine.quarantined());
    for (std::size_t r = 0; r < serial.quarantine.rows.size(); ++r) {
      const auto& a = serial.quarantine.rows[r];
      const auto& b = parallel.quarantine.rows[r];
      ASSERT_EQ(a.index, b.index) << r;
      ASSERT_EQ(a.reason, b.reason) << r;
      ASSERT_EQ(a.raw, b.raw) << r;
      ASSERT_EQ(a.detail, b.detail) << r;
    }
  }
}

/// Serialize a dataset plus its QC ledger so byte-equality covers both.
std::string serialize_with_qc(const dataset::StudyDataset& ds) {
  std::ostringstream os;
  dataset::write_user_records(os, ds.dasu);
  dataset::write_user_records(os, ds.fcc);
  dataset::write_upgrades(os, ds.upgrades);
  os << "qc admitted=" << ds.qc.admitted << "\n";
  for (const auto& row : ds.qc.rows) {
    os << row.index << "|" << quarantine_reason_label(row.reason) << "|"
       << row.raw << "|" << row.detail << "\n";
  }
  return os.str();
}

TEST(Robustness, GeneratorWithFaultsInvariantUnderThreads) {
  dataset::StudyConfig config;
  config.seed = 77;
  config.population_scale = 0.01;
  config.window_days = 0.5;
  config.fcc_users = 20;
  config.fcc_window_days = 0.5;
  config.first_year = 2011;
  config.last_year = 2011;
  config.faults = faults::FaultPlan::parse(
      "churn=0.3,outage_h=1,blackout=0.2,reset=0.2,wrap=0.2,skew=0.5,fail=0.05");
  config.max_household_failure_rate = 1.0;  // never abort this test

  config.threads = 1;
  const auto one = serialize_with_qc(
      dataset::StudyGenerator{market::World::builtin(), config}.generate());
  config.threads = 3;
  const auto three = serialize_with_qc(
      dataset::StudyGenerator{market::World::builtin(), config}.generate());
  EXPECT_FALSE(one.empty());
  EXPECT_EQ(one, three);
}

TEST(Robustness, GeneratorQuarantinesInjectedHouseholdFailures) {
  dataset::StudyConfig config;
  config.seed = 5;
  config.population_scale = 0.01;
  config.window_days = 0.25;
  config.fcc_users = 10;
  config.fcc_window_days = 0.25;
  config.first_year = 2011;
  config.last_year = 2011;
  config.max_household_failure_rate = 1.0;
  config.faults = faults::FaultPlan::parse("fail=0.3");

  const auto ds =
      dataset::StudyGenerator{market::World::builtin(), config}.generate();
  EXPECT_FALSE(ds.qc.empty());
  EXPECT_GT(ds.qc.count(QuarantineReason::kInjectedFault), 0u);
  EXPECT_GT(ds.dasu.size(), 0u);  // the run still produced usable records

  // The same config with a tight threshold aborts instead.
  config.max_household_failure_rate = 0.001;
  EXPECT_THROW((dataset::StudyGenerator{market::World::builtin(), config}.generate()),
               AnalysisError);
}

}  // namespace
}  // namespace bblab
