#include "causal/experiment.h"

#include <gtest/gtest.h>

#include "core/rng.h"

namespace bblab::causal {
namespace {

Unit unit(double outcome, std::vector<double> covs) {
  Unit u;
  u.outcome = outcome;
  u.covariates = std::move(covs);
  return u;
}

/// Build treated/control pools with a shared confounder; `effect` shifts
/// treated outcomes multiplicatively.
void build_pools(double effect, std::size_t n, Rng& rng, std::vector<Unit>& treated,
                 std::vector<Unit>& control) {
  for (std::size_t i = 0; i < n; ++i) {
    const double conf_t = rng.lognormal(2.0, 0.6);
    const double conf_c = rng.lognormal(2.0, 0.6);
    treated.push_back(
        unit(conf_t * effect * rng.lognormal(0.0, 0.5), {conf_t}));
    control.push_back(unit(conf_c * rng.lognormal(0.0, 0.5), {conf_c}));
  }
}

TEST(NaturalExperiment, DetectsPlantedEffect) {
  Rng rng{3};
  std::vector<Unit> treated;
  std::vector<Unit> control;
  build_pools(1.6, 1500, rng, treated, control);
  const NaturalExperiment experiment{};
  const auto result = experiment.run("planted", treated, control);
  EXPECT_GT(result.pairs, 500u);
  EXPECT_GT(result.test.fraction, 0.56);
  EXPECT_TRUE(result.test.conclusive()) << result.to_string();
}

TEST(NaturalExperiment, NullEffectIsInconclusive) {
  Rng rng{5};
  std::vector<Unit> treated;
  std::vector<Unit> control;
  build_pools(1.0, 1500, rng, treated, control);
  const NaturalExperiment experiment{};
  const auto result = experiment.run("placebo", treated, control);
  EXPECT_GT(result.pairs, 500u);
  EXPECT_NEAR(result.test.fraction, 0.5, 0.04);
  EXPECT_FALSE(result.test.conclusive()) << result.to_string();
}

TEST(NaturalExperiment, ConfoundingWithoutMatchingWouldMislead) {
  // Treated pool has larger confounder values AND outcome = confounder
  // (no real effect). The caliper matching must keep the comparison fair.
  Rng rng{7};
  std::vector<Unit> treated;
  std::vector<Unit> control;
  for (int i = 0; i < 1200; ++i) {
    const double conf_t = rng.lognormal(2.5, 0.5);  // systematically larger
    const double conf_c = rng.lognormal(2.0, 0.5);
    treated.push_back(unit(conf_t * rng.lognormal(0, 0.3), {conf_t}));
    control.push_back(unit(conf_c * rng.lognormal(0, 0.3), {conf_c}));
  }
  const NaturalExperiment experiment{};
  const auto result = experiment.run("confounded-null", treated, control);
  ASSERT_GT(result.pairs, 100u);
  // With matching, the spurious effect should shrink into inconclusive
  // territory (without matching ~70% of random pairs would favor treated).
  EXPECT_LT(result.test.fraction, 0.56) << result.to_string();
}

TEST(NaturalExperiment, TooFewPairsNeverSignificant) {
  std::vector<Unit> treated;
  std::vector<Unit> control;
  for (int i = 0; i < 5; ++i) {
    treated.push_back(unit(10.0 + i, {1.0}));
    control.push_back(unit(1.0 + i, {1.0}));
  }
  const NaturalExperiment experiment{};
  const auto result = experiment.run("tiny", treated, control);
  EXPECT_EQ(result.pairs, 5u);
  EXPECT_FALSE(result.test.significant);
}

TEST(NaturalExperiment, TiesAreDroppedByDefault) {
  std::vector<Unit> treated;
  std::vector<Unit> control;
  for (int i = 0; i < 50; ++i) {
    treated.push_back(unit(7.0, {1.0}));
    control.push_back(unit(7.0, {1.0}));
  }
  const NaturalExperiment experiment{};
  const auto result = experiment.run("ties", treated, control);
  EXPECT_EQ(result.pairs, 50u);
  EXPECT_EQ(result.test.trials, 0u);
}

TEST(NaturalExperiment, BalanceReported) {
  Rng rng{11};
  std::vector<Unit> treated;
  std::vector<Unit> control;
  build_pools(1.2, 500, rng, treated, control);
  const auto result = NaturalExperiment{}.run("balance", treated, control);
  ASSERT_EQ(result.balance.size(), 1u);
  EXPECT_LT(std::abs(result.balance[0]), 0.15);
}

TEST(PairedExperiment, DetectsWithinUserIncrease) {
  Rng rng{13};
  std::vector<std::pair<double, double>> outcomes;
  for (int i = 0; i < 800; ++i) {
    const double before = rng.lognormal(1.0, 0.8);
    // ~70% of users increase.
    const double after = before * (rng.bernoulli(0.7) ? 1.5 : 0.8);
    outcomes.emplace_back(before, after);
  }
  const auto result = paired_experiment("upgrades", outcomes);
  EXPECT_NEAR(result.test.fraction, 0.7, 0.05);
  EXPECT_TRUE(result.test.conclusive());
}

TEST(PairedExperiment, NullIsInconclusive) {
  Rng rng{17};
  std::vector<std::pair<double, double>> outcomes;
  for (int i = 0; i < 800; ++i) {
    outcomes.emplace_back(rng.lognormal(1.0, 0.8), rng.lognormal(1.0, 0.8));
  }
  const auto result = paired_experiment("null", outcomes);
  EXPECT_FALSE(result.test.conclusive());
}

TEST(PairedExperiment, EmptyInput) {
  const auto result = paired_experiment("empty", {});
  EXPECT_EQ(result.pairs, 0u);
  EXPECT_FALSE(result.test.significant);
  EXPECT_DOUBLE_EQ(result.test.p_value, 1.0);
}

TEST(ExperimentResult, ToStringMentionsEverything) {
  Rng rng{19};
  std::vector<Unit> treated;
  std::vector<Unit> control;
  build_pools(1.5, 300, rng, treated, control);
  const auto result = NaturalExperiment{}.run("fmt", treated, control);
  const auto s = result.to_string();
  EXPECT_NE(s.find("fmt"), std::string::npos);
  EXPECT_NE(s.find("pairs"), std::string::npos);
  EXPECT_NE(s.find("H holds"), std::string::npos);
}

}  // namespace
}  // namespace bblab::causal
