#include "dataset/generator.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "stats/quantile.h"

namespace bblab::dataset {
namespace {

StudyConfig small_config() {
  StudyConfig config;
  config.seed = 7;
  config.population_scale = 0.03;
  config.window_days = 1.0;
  config.fcc_users = 90;
  config.fcc_window_days = 2.0;
  config.first_year = 2011;
  config.last_year = 2012;
  config.upgrade_follow_share = 0.3;
  return config;
}

const StudyDataset& shared_dataset() {
  static const StudyDataset ds = [] {
    const auto world = market::World::builtin();
    return StudyGenerator{world, small_config()}.generate();
  }();
  return ds;
}

TEST(StudyGenerator, ProducesAllComponents) {
  const auto& ds = shared_dataset();
  EXPECT_GT(ds.dasu.size(), 200u);
  EXPECT_GT(ds.fcc.size(), 50u);
  EXPECT_GT(ds.upgrades.size(), 10u);
  EXPECT_EQ(ds.markets.size(), market::World::builtin().size());
}

TEST(StudyGenerator, RecordsAreInternallyConsistent) {
  const auto& ds = shared_dataset();
  std::set<std::uint64_t> ids;
  for (const auto& r : ds.dasu) {
    EXPECT_TRUE(ids.insert(r.user_id).second) << "duplicate user id";
    EXPECT_GT(r.capacity.bps(), 0.0);
    EXPECT_GT(r.rtt_ms, 0.0);
    EXPECT_GE(r.loss, 0.0);
    EXPECT_LE(r.loss, 0.35);
    EXPECT_GT(r.plan_price.dollars(), 0.0);
    EXPECT_GT(r.access_price.dollars(), 0.0);
    EXPECT_GE(r.year, 2011);
    EXPECT_LE(r.year, 2012);
    EXPECT_GT(r.usage.samples, 0u);
    // Note: p95 may sit BELOW the mean for extremely bursty users (one
    // multi-GB download can dominate the mean while occupying <5% of
    // samples), so no mean/peak ordering is asserted — only sanity.
    EXPECT_GE(r.usage.peak_down.bps(), 0.0);
    EXPECT_GE(r.usage.mean_down.bps(), 0.0);
  }
}

TEST(StudyGenerator, MeasuredCapacityTracksPlan) {
  const auto& ds = shared_dataset();
  std::size_t close = 0;
  std::size_t clean_lines = 0;
  for (const auto& r : ds.dasu) {
    if (r.loss > 0.005 || r.rtt_ms > 300) continue;  // NDT underreads these
    ++clean_lines;
    if (r.capacity.bps() > 0.6 * r.plan_capacity.bps() &&
        r.capacity.bps() <= 1.05 * r.plan_capacity.bps()) {
      ++close;
    }
  }
  ASSERT_GT(clean_lines, 100u);
  EXPECT_GT(static_cast<double>(close) / static_cast<double>(clean_lines), 0.8);
}

TEST(StudyGenerator, DeterministicForSameSeed) {
  const auto world = market::World::builtin();
  const std::vector<std::string> codes{"US", "JP"};
  const auto sub = world.subset(codes);
  StudyConfig config = small_config();
  config.population_scale = 0.02;
  const auto a = StudyGenerator{sub, config}.generate();
  const auto b = StudyGenerator{sub, config}.generate();
  ASSERT_EQ(a.dasu.size(), b.dasu.size());
  for (std::size_t i = 0; i < a.dasu.size(); ++i) {
    EXPECT_EQ(a.dasu[i].user_id, b.dasu[i].user_id);
    EXPECT_DOUBLE_EQ(a.dasu[i].capacity.bps(), b.dasu[i].capacity.bps());
    EXPECT_DOUBLE_EQ(a.dasu[i].usage.mean_down.bps(), b.dasu[i].usage.mean_down.bps());
  }
}

TEST(StudyGenerator, MarketSnapshotsCoverCaseStudies) {
  const auto& ds = shared_dataset();
  for (const auto* code : {"BW", "SA", "US", "JP", "IN"}) {
    const auto it = ds.markets.find(code);
    ASSERT_NE(it, ds.markets.end()) << code;
    EXPECT_FALSE(it->second.catalog.empty()) << code;
    EXPECT_GT(it->second.access_price.dollars(), 0.0) << code;
  }
  // The US market must have a defined (finite) upgrade cost.
  EXPECT_TRUE(std::isfinite(ds.markets.at("US").upgrade_cost_per_mbps));
}

TEST(StudyGenerator, UpgradeObservationsAreFasterAfter) {
  const auto& ds = shared_dataset();
  for (const auto& u : ds.upgrades) {
    EXPECT_TRUE(u.is_upgrade());
    EXPECT_GT(u.new_capacity.bps(), u.old_capacity.bps());
    EXPECT_GT(u.before.samples, 0u);
    EXPECT_GT(u.after.samples, 0u);
  }
}

TEST(StudyGenerator, SubscriberCountsGrowAcrossYears) {
  const auto& ds = shared_dataset();
  std::size_t y2011 = 0;
  std::size_t y2012 = 0;
  for (const auto& r : ds.dasu) {
    (r.year == 2011 ? y2011 : y2012)++;
  }
  EXPECT_GT(y2012, y2011);
}

TEST(StudyGenerator, UsCapacityDistributionIsDiverse) {
  const auto& ds = shared_dataset();
  std::vector<double> caps;
  for (const auto& r : ds.dasu) {
    if (r.country_code == "US") caps.push_back(r.capacity.mbps());
  }
  ASSERT_GT(caps.size(), 100u);
  EXPECT_LT(stats::quantile(caps, 0.1), 8.0);
  EXPECT_GT(stats::quantile(caps, 0.9), 20.0);
}

TEST(StudyGenerator, PlaceboRunsAndDisablesEffects) {
  const auto world = market::World::builtin();
  const std::vector<std::string> codes{"US"};
  StudyConfig config = small_config();
  config.population_scale = 0.02;
  config.placebo = true;
  const auto ds = StudyGenerator{world.subset(codes), config}.generate();
  EXPECT_GT(ds.dasu.size(), 50u);
}

TEST(StudyGenerator, ValidatesConfig) {
  const auto world = market::World::builtin();
  StudyConfig bad = small_config();
  bad.population_scale = 0.0;
  EXPECT_THROW(StudyGenerator(world, bad), InvalidArgument);
  bad = small_config();
  bad.last_year = bad.first_year - 1;
  EXPECT_THROW(StudyGenerator(world, bad), InvalidArgument);
}

}  // namespace
}  // namespace bblab::dataset
