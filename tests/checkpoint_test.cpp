#include "store/checkpoint.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <filesystem>
#include <string>

#include "core/error.h"
#include "core/thread_pool.h"
#include "core/watchdog.h"
#include "faults/fs_faults.h"
#include "store/bbs.h"

namespace bblab::store {
namespace {

dataset::StudyConfig tiny_config() {
  dataset::StudyConfig config;
  config.seed = 99;
  config.population_scale = 0.01;
  config.window_days = 0.25;
  config.fcc_users = 40;
  config.fcc_window_days = 0.5;
  config.first_year = 2011;
  config.last_year = 2012;
  config.upgrade_follow_share = 0.3;
  return config;
}

// StudyGenerator holds the world by reference, so hand out one with
// static storage duration rather than a temporary.
const market::World& tiny_world() {
  static const market::World world = [] {
    const std::vector<std::string> codes{"US", "JP"};
    return market::World::builtin().subset(codes);
  }();
  return world;
}

const dataset::StudyDataset& reference_dataset() {
  static const dataset::StudyDataset ds = [] {
    return dataset::StudyGenerator{tiny_world(), tiny_config()}.generate();
  }();
  return ds;
}

std::filesystem::path fresh_dir(const std::string& name) {
  const auto dir = std::filesystem::path{::testing::TempDir()} / name;
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(PlanShards, TilesTheIdSpaceExactly) {
  dataset::StudyGenerator gen{tiny_world(), tiny_config()};
  const auto markets = gen.build_markets();
  const auto shards = gen.plan_shards(markets);
  ASSERT_FALSE(shards.empty());
  std::uint64_t next_id = 1;  // user ids start at 1 and tile contiguously
  bool seen_fcc = false;
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const auto& s = shards[i];
    EXPECT_EQ(s.index, i);
    EXPECT_GT(s.n_users, 0u);
    EXPECT_EQ(s.base_id, next_id) << s.label();
    next_id += s.n_users;
    if (s.kind == dataset::ShardSpec::Kind::kFcc) {
      seen_fcc = true;
    } else {
      EXPECT_FALSE(seen_fcc) << "dasu shards must precede fcc shards";
    }
  }
  EXPECT_TRUE(seen_fcc);
}

TEST(SimulateShard, MergeReproducesGenerate) {
  dataset::StudyGenerator gen{tiny_world(), tiny_config()};
  const auto markets = gen.build_markets();
  const auto shards = gen.plan_shards(markets);
  core::ThreadPool pool{2};
  dataset::StudyDataset ds;
  ds.config = tiny_config();
  ds.markets = markets;
  for (const auto& spec : shards) {
    dataset::merge_shard_output(ds, spec, gen.simulate_shard(spec, markets, pool));
  }
  EXPECT_EQ(content_hash(ds), content_hash(reference_dataset()));
}

TEST(RunCheckpointed, CleanRunMatchesGenerateByteForByte) {
  CheckpointOptions opts;
  opts.dir = fresh_dir("ckpt_clean");
  const auto run = run_checkpointed(tiny_world(), tiny_config(), opts);
  EXPECT_FALSE(run.degraded());
  EXPECT_EQ(run.shards_reused, 0u);
  EXPECT_GT(run.shards_total, 0u);
  EXPECT_EQ(content_hash(run.dataset), content_hash(reference_dataset()));

  // Resuming over a complete checkpoint re-simulates nothing.
  opts.resume = true;
  const auto resumed = run_checkpointed(tiny_world(), tiny_config(), opts);
  EXPECT_EQ(resumed.shards_reused, resumed.shards_total);
  EXPECT_EQ(content_hash(resumed.dataset), content_hash(reference_dataset()));
}

TEST(RunCheckpointed, FreshRunIgnoresForeignCheckpoint) {
  CheckpointOptions opts;
  opts.dir = fresh_dir("ckpt_foreign");
  (void)run_checkpointed(tiny_world(), tiny_config(), opts);

  // Same directory, different config: the old segments must not leak in.
  auto other = tiny_config();
  other.seed = 100;
  opts.resume = true;
  const auto run = run_checkpointed(tiny_world(), other, opts);
  EXPECT_EQ(run.shards_reused, 0u);
  EXPECT_FALSE(run.degraded());
  const auto direct = dataset::StudyGenerator{tiny_world(), other}.generate();
  EXPECT_EQ(content_hash(run.dataset), content_hash(direct));
}

// The core crash-safety claim: kill the run at EVERY mutating filesystem
// operation in turn, resume, and demand the byte-identical dataset. The
// crash fault fires mid-operation (half-written file / skipped rename),
// so this also exercises salvage and read-back verification.
TEST(RunCheckpointed, CrashAtEveryOpThenResumeIsByteIdentical) {
  const auto reference = content_hash(reference_dataset());

  // First, count the ops of an uninterrupted run.
  faults::FaultFileSystem counter{faults::FsFaultPlan{}};
  CheckpointOptions opts;
  opts.dir = fresh_dir("ckpt_crash_count");
  opts.fs = &counter;
  (void)run_checkpointed(tiny_world(), tiny_config(), opts);
  const auto total_ops = counter.ops();
  ASSERT_GT(total_ops, 10u);

  for (std::uint64_t k = 0; k < total_ops; ++k) {
    faults::FaultFileSystem fs{
        faults::FsFaultPlan::parse("crash@" + std::to_string(k))};
    CheckpointOptions crash_opts;
    crash_opts.dir = fresh_dir("ckpt_crash_" + std::to_string(k));
    crash_opts.fs = &fs;
    bool crashed = false;
    try {
      const auto run = run_checkpointed(tiny_world(), tiny_config(), crash_opts);
      // A crash injected on a manifest write is absorbed as a warning
      // only when it surfaces as IoError; InjectedCrash always escapes.
      EXPECT_FALSE(run.degraded());
    } catch (const faults::InjectedCrash&) {
      crashed = true;
    }
    ASSERT_TRUE(crashed) << "op " << k << " of " << total_ops
                         << " never executed its injected crash";

    faults::FaultFileSystem clean{faults::FsFaultPlan{}};
    crash_opts.fs = &clean;
    crash_opts.resume = true;
    const auto resumed = run_checkpointed(tiny_world(), tiny_config(), crash_opts);
    EXPECT_FALSE(resumed.degraded()) << "resume after crash at op " << k;
    EXPECT_EQ(content_hash(resumed.dataset), reference)
        << "resume after crash at op " << k << " diverged";
    std::filesystem::remove_all(crash_opts.dir);
  }
}

TEST(RunCheckpointed, TransientFaultsRecoverWithinBoundedRetries) {
  // eio@7 lands on a shard segment write (op 0 is the shards/ mkdir;
  // each shard costs 5 mutating ops). Two consecutive failures still fit
  // inside the default 4-attempt policy.
  faults::FaultFileSystem fs{faults::FsFaultPlan::parse("eio@7x2")};
  CheckpointOptions opts;
  opts.dir = fresh_dir("ckpt_eio");
  opts.fs = &fs;
  opts.retry.base_delay_ms = 0.01;  // keep the test fast
  const auto run = run_checkpointed(tiny_world(), tiny_config(), opts);
  EXPECT_FALSE(run.degraded());
  EXPECT_EQ(content_hash(run.dataset), content_hash(reference_dataset()));
}

TEST(RunCheckpointed, ExhaustedShardQuarantinesAndResumeHeals) {
  // Four EIO hits starting at op 7 fail all three publication attempts
  // of the same shard (the first failed attempt burns two firings: the
  // segment write plus its best-effort tmp cleanup): retries exhaust,
  // the shard quarantines as kIoFailure, and the run degrades but
  // completes.
  faults::FaultFileSystem fs{faults::FsFaultPlan::parse("eio@7x4")};
  CheckpointOptions opts;
  opts.dir = fresh_dir("ckpt_exhaust");
  opts.fs = &fs;
  opts.retry.max_attempts = 3;
  opts.retry.base_delay_ms = 0.01;
  const auto run = run_checkpointed(tiny_world(), tiny_config(), opts);
  EXPECT_TRUE(run.degraded());
  EXPECT_EQ(run.shards_failed, 1u);
  EXPECT_EQ(run.dataset.qc.count(QuarantineReason::kIoFailure), 1u);
  EXPECT_NE(content_hash(run.dataset), content_hash(reference_dataset()));

  // The checkpoint keeps every healthy shard; a clean resume re-simulates
  // only the quarantined one and lands byte-identical.
  faults::FaultFileSystem clean{faults::FsFaultPlan{}};
  opts.fs = &clean;
  opts.resume = true;
  const auto healed = run_checkpointed(tiny_world(), tiny_config(), opts);
  EXPECT_FALSE(healed.degraded());
  EXPECT_GT(healed.shards_reused, 0u);
  EXPECT_EQ(content_hash(healed.dataset), content_hash(reference_dataset()));
}

TEST(RunCheckpointed, ImpossibleDeadlineQuarantinesEveryShard) {
  CheckpointOptions opts;
  opts.dir = fresh_dir("ckpt_deadline");
  opts.shard_deadline_s = 1e-9;
  const auto run = run_checkpointed(tiny_world(), tiny_config(), opts);
  EXPECT_TRUE(run.degraded());
  EXPECT_EQ(run.shards_failed, run.shards_total);
  EXPECT_EQ(run.dataset.qc.count(QuarantineReason::kDeadlineExceeded),
            run.shards_total);
  EXPECT_TRUE(run.dataset.dasu.empty());
  EXPECT_TRUE(run.dataset.fcc.empty());

  // Deadlines off again: the same directory heals to the full dataset.
  opts.shard_deadline_s = 0.0;
  opts.resume = true;
  const auto healed = run_checkpointed(tiny_world(), tiny_config(), opts);
  EXPECT_FALSE(healed.degraded());
  EXPECT_EQ(content_hash(healed.dataset), content_hash(reference_dataset()));
}

}  // namespace
}  // namespace bblab::store
