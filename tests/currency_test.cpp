#include "market/currency.h"

#include <gtest/gtest.h>

#include "core/error.h"

namespace bblab::market {
namespace {

TEST(Currency, UsdIsIdentity) {
  const Currency usd = Currency::usd();
  EXPECT_EQ(usd.code(), "USD");
  EXPECT_DOUBLE_EQ(usd.to_usd_ppp(53.0).dollars(), 53.0);
  EXPECT_DOUBLE_EQ(usd.to_usd_market(53.0), 53.0);
  EXPECT_DOUBLE_EQ(usd.ppp_ratio(), 1.0);
}

TEST(Currency, PppConversionUsesPppFactor) {
  // A currency trading at 60/USD whose PPP factor is 17/USD: local goods
  // are cheap at market rates.
  const Currency inr{"INR", 60.0, 17.0};
  EXPECT_DOUBLE_EQ(inr.to_usd_ppp(1700.0).dollars(), 100.0);
  EXPECT_NEAR(inr.to_usd_market(1700.0), 28.33, 0.01);
  EXPECT_GT(inr.ppp_ratio(), 1.0);
}

TEST(Currency, RoundTrip) {
  const Currency jpy{"JPY", 100.0, 104.0};
  const MoneyPpp usd = jpy.to_usd_ppp(3848.0);
  EXPECT_NEAR(jpy.from_usd_ppp(usd), 3848.0, 1e-9);
}

TEST(Currency, PppAdjustmentChangesComparison) {
  // The paper's Botswana example: nominally moderate prices become very
  // expensive after PPP adjustment relative to local purchasing power.
  const Currency bwp{"BWP", 8.5, 4.6};
  const double local_price = 8.5 * 80.0;  // "80 market-USD" worth of pula
  EXPECT_DOUBLE_EQ(bwp.to_usd_market(local_price), 80.0);
  EXPECT_GT(bwp.to_usd_ppp(local_price).dollars(), 80.0);
}

TEST(Currency, ValidatesInputs) {
  EXPECT_THROW(Currency("", 1.0, 1.0), InvalidArgument);
  EXPECT_THROW(Currency("XXX", 0.0, 1.0), InvalidArgument);
  EXPECT_THROW(Currency("XXX", 1.0, -2.0), InvalidArgument);
}

}  // namespace
}  // namespace bblab::market
