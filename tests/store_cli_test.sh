#!/usr/bin/env bash
# End-to-end check of the snapshot + cache subsystem through the CLI:
#   1. `generate --cache` output is byte-identical to an uncached run, and
#      runs at 1, 2 and 8 threads all hit the SAME cache entry and produce
#      byte-identical CSVs (parallelism is excluded from the cache key).
#   2. pack -> cat round-trips; cat on a corrupted snapshot fails with a
#      typed error and a non-zero exit, never a crash.
#   3. cache ls / rm KEY / rm all manage entries as advertised.
set -u

BBLAB=$1
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
export BBLAB_CACHE_DIR="$WORK/cache"
ARGS="--seed 99 --scale 0.02 --days 0.3"
fails=0

fail() {
  echo "FAIL: $*"
  fails=1
}

# --- 1. cache hits are byte-identical across thread counts -----------------
"$BBLAB" generate $ARGS --out "$WORK/plain" >/dev/null 2>&1 \
  || { echo "FAIL: baseline generate"; exit 1; }
for t in 1 2 8; do
  "$BBLAB" generate $ARGS --cache --threads "$t" --out "$WORK/t$t" \
    >/dev/null 2>"$WORK/log$t" || fail "generate --cache --threads $t"
done
grep -q "cache miss" "$WORK/log1" || fail "first cached run was not a miss"
grep -q "cache hit" "$WORK/log2" || fail "second run did not hit the cache"
grep -q "cache hit" "$WORK/log8" || fail "third run did not hit the cache"
for t in 1 2 8; do
  diff -r "$WORK/plain" "$WORK/t$t" >/dev/null \
    || fail "--cache --threads $t output differs from uncached run"
done
entries=$("$BBLAB" cache ls | sed '$d' | wc -l)
[ "$entries" -eq 1 ] || fail "expected 1 cache entry for 3 runs, got $entries"

# --- 2. pack / cat / corruption rejection ----------------------------------
"$BBLAB" pack "$WORK/snap.bbs" $ARGS --cache >/dev/null 2>&1 || fail "pack"
"$BBLAB" cat "$WORK/snap.bbs" >"$WORK/cat.out" 2>/dev/null || fail "cat"
grep -q "bbs format v1" "$WORK/cat.out" || fail "cat: missing format banner"
for section in config dasu fcc upgrades markets qc; do
  grep -q "^$section " "$WORK/cat.out" || fail "cat: missing section $section"
done
grep -q "records: dasu=" "$WORK/cat.out" || fail "cat: missing record counts"

python3 - "$WORK/snap.bbs" <<'EOF'
import sys
path = sys.argv[1]
data = bytearray(open(path, 'rb').read())
data[len(data) // 2] ^= 0x20  # flip one payload bit mid-file
open(path, 'wb').write(data)
EOF
if "$BBLAB" cat "$WORK/snap.bbs" >/dev/null 2>"$WORK/cat.err"; then
  fail "cat accepted a corrupted snapshot"
fi
grep -q "error:" "$WORK/cat.err" || fail "corrupted cat: no typed error message"

# --- 3. cache ls / rm ------------------------------------------------------
key=$("$BBLAB" cache ls | head -n 1 | cut -d' ' -f1)
[ -n "$key" ] || fail "cache ls printed no key"
"$BBLAB" cache rm "$key" >/dev/null || fail "cache rm $key"
"$BBLAB" cache rm "$key" >/dev/null 2>&1 && fail "cache rm of absent key succeeded"
"$BBLAB" cache rm not-a-key >/dev/null 2>&1 && fail "cache rm accepted a malformed key"
"$BBLAB" generate $ARGS --cache --out "$WORK/repop" >/dev/null 2>&1
"$BBLAB" cache rm all >/dev/null || fail "cache rm all"
entries=$("$BBLAB" cache ls | sed '$d' | wc -l)
[ "$entries" -eq 0 ] || fail "cache not empty after rm all"

if [ "$fails" -ne 0 ]; then
  exit 1
fi
echo "PASS: cache byte-identical across threads; pack/cat/rm behave"
