#include "analysis/figures.h"
#include "analysis/scorecard.h"
#include "analysis/tables.h"

#include <gtest/gtest.h>

#include <sstream>

namespace bblab::analysis {
namespace {

const dataset::StudyDataset& shared_dataset() {
  static const dataset::StudyDataset ds = [] {
    dataset::StudyConfig config;
    config.seed = 11;
    config.population_scale = 0.05;
    config.window_days = 1.0;
    config.fcc_users = 150;
    config.fcc_window_days = 2.0;
    config.first_year = 2011;
    config.last_year = 2012;
    config.upgrade_follow_share = 0.3;
    return dataset::StudyGenerator{market::World::builtin(), config}.generate();
  }();
  return ds;
}

TEST(Fig1, DistributionsAreNonEmptyAndOrdered) {
  const auto fig = fig1_characteristics(shared_dataset());
  EXPECT_GT(fig.capacity_mbps.size(), 200u);
  EXPECT_GT(fig.latency_ms.inverse(0.95), fig.latency_ms.inverse(0.5));
  EXPECT_GE(fig.loss_pct.min(), 0.0);
}

TEST(Fig2, UsageGrowsWithCapacity) {
  const auto fig = fig2_capacity_vs_usage(shared_dataset());
  for (const auto* series : {&fig.mean_bt, &fig.peak_bt, &fig.mean_nobt, &fig.peak_nobt}) {
    ASSERT_GE(series->points.size(), 4u);
    // Strong positive log-log correlation (paper: r >= 0.87).
    EXPECT_GT(series->r, 0.8);
    // First-to-last bin usage must rise substantially.
    EXPECT_GT(series->points.back().usage_mbps.mean,
              series->points.front().usage_mbps.mean * 2);
  }
}

TEST(Fig2, PeakExceedsMean) {
  const auto fig = fig2_capacity_vs_usage(shared_dataset());
  for (std::size_t i = 0; i < fig.mean_nobt.points.size(); ++i) {
    const int bin = fig.mean_nobt.points[i].bin;
    for (const auto& peak_point : fig.peak_nobt.points) {
      if (peak_point.bin == bin) {
        EXPECT_GT(peak_point.usage_mbps.mean, fig.mean_nobt.points[i].usage_mbps.mean);
      }
    }
  }
}

TEST(Fig3, PeakAgreesAcrossDatasetsMoreThanMean) {
  const auto fig = fig3_fcc_vs_dasu(shared_dataset());
  ASSERT_GE(fig.mean_fcc.points.size(), 3u);
  ASSERT_GE(fig.mean_dasu_us.points.size(), 3u);
  EXPECT_GT(fig.r_mean, 0.75);
  EXPECT_GT(fig.r_peak, 0.75);
}

TEST(Fig4, FastNetworkShiftsDistributionsRight) {
  const auto fig = fig4_slow_fast_cdfs(shared_dataset());
  ASSERT_GT(fig.mean_slow.size(), 10u);
  EXPECT_GT(fig.mean_fast.inverse(0.5), fig.mean_slow.inverse(0.5));
  EXPECT_GT(fig.peak_fast.inverse(0.5), fig.peak_slow.inverse(0.5));
}

TEST(Fig5, HasCellsAndLowTierGainsArePositive) {
  const auto fig = fig5_upgrade_deltas(shared_dataset());
  EXPECT_FALSE(fig.peak_nobt.empty());
  double low_tier_change = 0.0;
  std::size_t low_tier_users = 0;
  for (const auto& cell : fig.peak_nobt) {
    if (cell.from_tier <= 1) {
      low_tier_change += cell.change_mbps.mean * static_cast<double>(cell.users);
      low_tier_users += cell.users;
    }
  }
  if (low_tier_users > 10) {
    EXPECT_GT(low_tier_change / static_cast<double>(low_tier_users), 0.0);
  }
}

TEST(Fig6, DemandPerClassIsStableAcrossYears) {
  const auto fig = fig6_longitudinal(shared_dataset());
  ASSERT_GE(fig.peak_nobt.size(), 2u);
  // The year-vs-year natural experiments should be inconclusive (§4).
  ASSERT_FALSE(fig.year_experiments.empty());
  for (const auto& e : fig.year_experiments) {
    EXPECT_LT(e.test.fraction, 0.58) << e.to_string();
  }
}

TEST(Fig7, CountriesOrderedByUtilization) {
  const auto fig =
      fig7_country_cdfs(shared_dataset(), {"BW", "SA", "US", "JP"});
  ASSERT_EQ(fig.size(), 4u);
  // Capacity medians ascend BW < SA < US < JP (paper Fig. 7a).
  EXPECT_LT(fig[0].capacity_mbps.inverse(0.5), fig[1].capacity_mbps.inverse(0.5));
  EXPECT_LT(fig[1].capacity_mbps.inverse(0.5), fig[2].capacity_mbps.inverse(0.5));
  EXPECT_LT(fig[2].capacity_mbps.inverse(0.5), fig[3].capacity_mbps.inverse(0.5));
  // Peak utilization in (approximately) reverse order (paper Fig. 7b).
  // BW and SA carry only a few dozen users at this test scale, so the
  // middle comparisons get a sampling-noise tolerance; Botswana must
  // dominate everyone outright.
  EXPECT_GT(fig[0].peak_utilization.inverse(0.5),
            fig[1].peak_utilization.inverse(0.5));
  EXPECT_GT(fig[0].peak_utilization.inverse(0.5),
            fig[2].peak_utilization.inverse(0.5));
  EXPECT_GT(fig[1].peak_utilization.inverse(0.5),
            fig[2].peak_utilization.inverse(0.5) * 0.7);
  EXPECT_GT(fig[2].peak_utilization.inverse(0.5),
            fig[3].peak_utilization.inverse(0.5) * 0.8);
}

TEST(Fig9, BotswanaOutUsesUsInLowTier) {
  const auto fig = fig9_tier_demand(shared_dataset(), {"BW", "SA", "US", "JP"});
  double bw_low = -1.0;
  double us_low = -1.0;
  for (const auto& bar : fig) {
    if (bar.country == "BW" && bar.tier == "<1 Mbps") bw_low = bar.peak_demand_mbps.mean;
    if (bar.country == "US" && bar.tier == "<1 Mbps") us_low = bar.peak_demand_mbps.mean;
  }
  if (bw_low > 0 && us_low > 0) {
    EXPECT_GT(bw_low, us_low);
  }
}

TEST(Fig10, CorrelationSharesAndAnchors) {
  const auto fig = fig10_upgrade_cost_cdf(shared_dataset());
  EXPECT_GT(fig.share_strong_corr, 0.45);
  EXPECT_GT(fig.share_moderate_corr, fig.share_strong_corr);
  ASSERT_TRUE(fig.examples.count("JP"));
  ASSERT_TRUE(fig.examples.count("US"));
  ASSERT_TRUE(fig.examples.count("GH"));
  EXPECT_LT(fig.examples.at("JP"), fig.examples.at("US"));
  EXPECT_LT(fig.examples.at("US"), fig.examples.at("GH"));
}

TEST(Fig11, IndiaLatencyDominatesOthers) {
  const auto fig = fig11_india_latency(shared_dataset());
  EXPECT_GT(fig.ndt1113_india.inverse(0.5), 2.0 * fig.ndt1113_other.inverse(0.5));
  // Nearly every Indian user above 100 ms (paper).
  EXPECT_GT(fig.ndt1113_india.inverse(0.1), 100.0);
  // The 2014 web and NDT re-measurements track the archival distribution.
  EXPECT_NEAR(fig.ndt14_india.inverse(0.5), fig.ndt1113_india.inverse(0.5),
              fig.ndt1113_india.inverse(0.5) * 0.25);
}

TEST(Fig12, IndiaLossDominates) {
  const auto fig = fig12_india_loss(shared_dataset());
  EXPECT_GT(fig.loss_pct_india.inverse(0.5), fig.loss_pct_other.inverse(0.5));
}

TEST(Tab4, CaseStudyMatchesPaperShape) {
  const auto tab = tab4_case_study(shared_dataset(), {"BW", "SA", "US", "JP"});
  ASSERT_EQ(tab.size(), 4u);
  // Median capacities ascend across the four markets.
  EXPECT_LT(tab[0].median_capacity_mbps, tab[1].median_capacity_mbps);
  EXPECT_LT(tab[1].median_capacity_mbps, tab[2].median_capacity_mbps);
  EXPECT_LT(tab[2].median_capacity_mbps, tab[3].median_capacity_mbps);
  // Income share descends: Botswana pays the most relative to income.
  EXPECT_GT(tab[0].income_share, tab[1].income_share);
  EXPECT_GT(tab[1].income_share, tab[2].income_share * 1.2);
  // GDP per capita anchored to the paper's values.
  EXPECT_DOUBLE_EQ(tab[2].gdp_per_capita_ppp, 49797);
}

TEST(Scorecard, MajorityOfClaimsReproduce) {
  const auto card = run_scorecard(shared_dataset());
  EXPECT_GE(card.total(), 18u);
  // At the reduced test scale some matched-pair checks go quiet; still,
  // most of the paper's claims must reproduce.
  EXPECT_GE(card.pass_rate(), 0.6) << [&] {
    std::ostringstream os;
    card.print(os);
    return os.str();
  }();
}

TEST(Scorecard, RendersBothFormats) {
  const auto card = run_scorecard(shared_dataset());
  std::ostringstream os;
  card.print(os);
  EXPECT_NE(os.str().find("reproduction scorecard"), std::string::npos);
  const auto md = card.to_markdown();
  EXPECT_NE(md.find("| check | paper |"), std::string::npos);
  EXPECT_NE(md.find("checks reproduced"), std::string::npos);
}

TEST(Tab5, RegionalOrderingMatchesPaper) {
  const auto tab = tab5_region_costs(shared_dataset());
  double africa1 = -1;
  double europe1 = -1;
  double na1 = -1;
  for (const auto& row : tab) {
    if (row.region == market::Region::kAfrica) africa1 = row.pct_above_1;
    if (row.region == market::Region::kEurope) europe1 = row.pct_above_1;
    if (row.region == market::Region::kNorthAmerica) na1 = row.pct_above_1;
  }
  EXPECT_GT(africa1, 80.0);
  EXPECT_LT(europe1, 35.0);
  EXPECT_LE(na1, 0.0 + 1e-9);
}

}  // namespace
}  // namespace bblab::analysis
