#include "measurement/ndt.h"

#include <gtest/gtest.h>

#include "core/error.h"

namespace bblab::measurement {
namespace {

netsim::AccessLink link(double mbps, double rtt = 40.0, double loss = 0.001) {
  netsim::AccessLink l;
  l.down = Rate::from_mbps(mbps);
  l.up = Rate::from_mbps(mbps / 8);
  l.rtt_ms = rtt;
  l.loss = loss;
  return l;
}

TEST(NdtProbe, ReadsNearProvisionedCapacityOnCleanLinks) {
  const NdtProbe probe;
  Rng rng{3};
  const auto result = probe.characterize(link(10.0, 20.0, 1e-5), rng);
  EXPECT_GT(result.download.mbps(), 8.5);
  EXPECT_LE(result.download.mbps(), 10.0);
  EXPECT_GT(result.upload.mbps(), 1.0);
}

TEST(NdtProbe, UnderReadsLossyHighRttLinks) {
  const NdtProbe probe;
  Rng rng{5};
  // Satellite-grade path: measured capacity collapses below provisioned.
  const auto result = probe.characterize(link(8.0, 650.0, 0.02), rng);
  EXPECT_LT(result.download.mbps(), 4.0);
}

TEST(NdtProbe, LatencyEstimateTracksTruth) {
  const NdtProbe probe;
  Rng rng{7};
  const auto result = probe.characterize(link(10, 100.0), rng);
  EXPECT_NEAR(result.rtt_ms, 100.0, 15.0);
}

TEST(NdtProbe, LossEstimateIsUnbiasedOnAverage) {
  const NdtProbe probe;
  Rng rng{9};
  double total = 0.0;
  constexpr int kRuns = 300;
  for (int i = 0; i < kRuns; ++i) {
    total += probe.characterize(link(10, 40, 0.01), rng).loss;
  }
  EXPECT_NEAR(total / kRuns, 0.01, 0.001);
}

TEST(NdtProbe, LowLossQuantizes) {
  // A 4000-packet sample cannot resolve loss below 1/4000 per run; single
  // runs report either zero or multiples of 0.025%.
  NdtProbeParams params;
  params.repetitions = 1;
  const NdtProbe probe{params};
  Rng rng{11};
  const auto result = probe.measure_once(link(10, 40, 1e-5), rng);
  const double packets = 4000.0;
  const double quantum = 1.0 / packets;
  const double remainder = std::fmod(result.loss + 1e-12, quantum);
  EXPECT_LT(std::min(remainder, quantum - remainder), 1e-9);
}

TEST(NdtProbe, CharacterizeTakesMaxOfRuns) {
  NdtProbeParams params;
  params.repetitions = 16;
  const NdtProbe probe{params};
  Rng rng{13};
  const auto agg = probe.characterize(link(10), rng);
  Rng rng2{13};
  double max_single = 0.0;
  for (int i = 0; i < 16; ++i) {
    max_single = std::max(max_single, probe.measure_once(link(10), rng2).download.mbps());
  }
  EXPECT_DOUBLE_EQ(agg.download.mbps(), max_single);
}

TEST(NdtProbe, ValidatesInputs) {
  const NdtProbe probe;
  Rng rng{1};
  netsim::AccessLink bad = link(10);
  bad.down = Rate{};
  EXPECT_THROW(probe.measure_once(bad, rng), InvalidArgument);
}

}  // namespace
}  // namespace bblab::measurement
