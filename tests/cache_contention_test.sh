#!/usr/bin/env bash
# Concurrency and hygiene contract of the artifact cache: two processes
# racing to populate the same fingerprint must converge on exactly one
# entry with identical outputs and no temp-file residue (the loser
# discards), and a stale *.tmp orphaned by a killed writer is swept the
# next time any process opens the cache.
set -u

BBLAB=$1
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
ARGS="--seed 99 --scale 0.02 --days 0.3"
CACHE="$WORK/cache"
fails=0

fail() {
  echo "FAIL: $*"
  fails=1
}

md5_tree() {
  (cd "$1" && find . -type f | sort | xargs md5sum) | md5sum | cut -d' ' -f1
}

# --- two concurrent publishers, one winner ----------------------------------
"$BBLAB" generate $ARGS --cache --cache-dir "$CACHE" --out "$WORK/a" \
  >/dev/null 2>&1 &
pid_a=$!
"$BBLAB" generate $ARGS --cache --cache-dir "$CACHE" --out "$WORK/b" \
  >/dev/null 2>&1 &
pid_b=$!
wait "$pid_a" || fail "concurrent run A exited non-zero"
wait "$pid_b" || fail "concurrent run B exited non-zero"

[ "$(md5_tree "$WORK/a")" = "$(md5_tree "$WORK/b")" ] \
  || fail "concurrent runs produced different outputs"

entries=$(find "$CACHE/objects" -name '*.bbs' | wc -l)
[ "$entries" -eq 1 ] || fail "want exactly 1 cache entry, found $entries"

residue=$(find "$CACHE" -name '*.tmp' | wc -l)
[ "$residue" -eq 0 ] || fail "$residue *.tmp files left behind"

# A third run must hit the cache, not regenerate.
"$BBLAB" generate $ARGS --cache --cache-dir "$CACHE" --out "$WORK/c" \
  >/dev/null 2>"$WORK/err_c" || fail "cache-hit run exited non-zero"
grep -q "cache hit" "$WORK/err_c" || fail "third run missed the cache"
[ "$(md5_tree "$WORK/a")" = "$(md5_tree "$WORK/c")" ] \
  || fail "cache hit produced different outputs"

# --- stale tmp sweep on open ------------------------------------------------
planted="$CACHE/objects/de/adbeef.p99999.0.tmp"
mkdir -p "$(dirname "$planted")"
echo "orphaned by a killed writer" >"$planted"
# Negative TTL makes every tmp immediately stale; any cache open sweeps.
BBLAB_CACHE_TMP_TTL_S=-1 "$BBLAB" cache ls --cache-dir "$CACHE" >/dev/null 2>&1 \
  || fail "cache ls exited non-zero"
[ ! -e "$planted" ] || fail "stale tmp survived the sweep"

# The surviving entry must still be readable after the sweep.
"$BBLAB" generate $ARGS --cache --cache-dir "$CACHE" --out "$WORK/d" \
  >/dev/null 2>"$WORK/err_d" || fail "post-sweep run exited non-zero"
grep -q "cache hit" "$WORK/err_d" || fail "post-sweep run missed the cache"

if [ "$fails" -ne 0 ]; then
  echo "cache_contention_test: FAILED"
  exit 1
fi
echo "cache_contention_test: OK"
