#include "stats/chi_squared.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/error.h"
#include "core/rng.h"

namespace bblab::stats {
namespace {

TEST(RegularizedGammaP, KnownValues) {
  // P(1, x) = 1 - e^-x.
  EXPECT_NEAR(regularized_gamma_p(1.0, 1.0), 1.0 - std::exp(-1.0), 1e-10);
  EXPECT_NEAR(regularized_gamma_p(1.0, 5.0), 1.0 - std::exp(-5.0), 1e-10);
  // P(0.5, x) = erf(sqrt(x)).
  EXPECT_NEAR(regularized_gamma_p(0.5, 2.0), std::erf(std::sqrt(2.0)), 1e-9);
  EXPECT_DOUBLE_EQ(regularized_gamma_p(3.0, 0.0), 0.0);
}

TEST(RegularizedGammaP, MonotoneAndBounded) {
  double prev = -1.0;
  for (double x = 0.0; x < 30.0; x += 0.5) {
    const double p = regularized_gamma_p(4.0, x);
    EXPECT_GE(p, prev - 1e-12);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0 + 1e-12);
    prev = p;
  }
}

TEST(ChiSquaredSf, ReferenceQuantiles) {
  // Critical values from standard tables.
  EXPECT_NEAR(chi_squared_sf(3.841, 1.0), 0.05, 2e-3);
  EXPECT_NEAR(chi_squared_sf(5.991, 2.0), 0.05, 2e-3);
  EXPECT_NEAR(chi_squared_sf(6.635, 1.0), 0.01, 1e-3);
  EXPECT_NEAR(chi_squared_sf(0.0, 3.0), 1.0, 1e-12);
}

TEST(ChiSquaredGof, UniformDieFits) {
  // 600 rolls of a fair die, near-uniform counts.
  const std::vector<double> observed{95, 102, 98, 105, 97, 103};
  const std::vector<double> expected(6, 100.0);
  const auto result = chi_squared_gof(observed, expected);
  EXPECT_DOUBLE_EQ(result.dof, 5.0);
  EXPECT_GT(result.p_value, 0.5);
}

TEST(ChiSquaredGof, LoadedDieRejected) {
  const std::vector<double> observed{150, 90, 90, 90, 90, 90};
  const std::vector<double> expected(6, 100.0);
  const auto result = chi_squared_gof(observed, expected);
  EXPECT_LT(result.p_value, 0.01);
}

TEST(ChiSquaredGof, Validation) {
  EXPECT_THROW(chi_squared_gof(std::vector<double>{1.0}, std::vector<double>{1.0}),
               InvalidArgument);
  EXPECT_THROW(chi_squared_gof(std::vector<double>{1, 2}, std::vector<double>{1, 0}),
               InvalidArgument);
  EXPECT_THROW(chi_squared_gof(std::vector<double>{1, 2}, std::vector<double>{1, 2}, 1),
               InvalidArgument);
}

TEST(ChiSquaredFairCoin, PaxsonsLargeSamplePhenomenon) {
  // The §2.3 point this module exists to demonstrate: a 50.5% "coin" —
  // practically fair — passes at small n but fails spectacularly at the
  // sample sizes these experiments reach.
  const auto small = chi_squared_fair_coin(505, 495);
  EXPECT_GT(small.p_value, 0.5);
  const auto huge = chi_squared_fair_coin(505000, 495000);
  EXPECT_LT(huge.p_value, 1e-10);
  // ...which is why the paper adds the 2% practical-importance margin:
  // 50.5% < 52% would be discarded regardless of its p-value.
}

TEST(ChiSquaredFairCoin, AgreesWithSimulatedFairCoin) {
  Rng rng{3};
  int reject = 0;
  constexpr int kTrials = 200;
  for (int t = 0; t < kTrials; ++t) {
    std::uint64_t wins = 0;
    for (int i = 0; i < 400; ++i) wins += rng.bernoulli(0.5) ? 1 : 0;
    if (chi_squared_fair_coin(wins, 400 - wins).p_value < 0.05) ++reject;
  }
  // ~5% type-I error rate.
  EXPECT_LE(reject, 22);
}

}  // namespace
}  // namespace bblab::stats
