#include "stats/column.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "core/error.h"
#include "core/rng.h"
#include "stats/quantile.h"

namespace bblab::stats {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

TEST(SortedFinite, DropsNansAndCountsThem) {
  std::size_t dropped = 0;
  const auto out =
      sorted_finite(std::vector<double>{kNan, 5, 1, kNan, 9, 3, kNan}, &dropped);
  EXPECT_EQ(dropped, 3u);
  EXPECT_EQ(out, (std::vector<double>{1, 3, 5, 9}));
}

TEST(RadixSortDouble, MatchesStdSortOnAdversarialValues) {
  // Negatives, subnormals, infinities, both zeros, mixed magnitudes —
  // everything a column can legally hold after NaN filtering.
  Rng rng{11};
  std::vector<double> xs;
  for (int i = 0; i < 5000; ++i) {
    double v = rng.lognormal(0.0, 4.0);
    if (rng.bernoulli(0.4)) v = -v;
    if (rng.bernoulli(0.01)) v = 0.0;
    if (rng.bernoulli(0.01)) v = -0.0;
    if (rng.bernoulli(0.005)) v = std::numeric_limits<double>::infinity();
    if (rng.bernoulli(0.005)) v = -std::numeric_limits<double>::infinity();
    if (rng.bernoulli(0.01)) v = std::numeric_limits<double>::denorm_min();
    xs.push_back(v);
  }
  auto expected = xs;
  std::sort(expected.begin(), expected.end());
  radix_sort(xs);
  ASSERT_EQ(xs.size(), expected.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    // Compare bit-level ordering only up to numeric equality (-0.0 vs
    // +0.0 may be interleaved differently by std::sort, which treats
    // them as equal).
    EXPECT_EQ(xs[i], expected[i]) << i;
  }
}

TEST(RadixSortDouble, NegativeZeroSortsBeforePositiveZero) {
  std::vector<double> xs{0.0, -0.0, 0.0, -0.0};
  radix_sort(xs);
  EXPECT_TRUE(std::signbit(xs[0]));
  EXPECT_TRUE(std::signbit(xs[1]));
  EXPECT_FALSE(std::signbit(xs[2]));
  EXPECT_FALSE(std::signbit(xs[3]));
}

TEST(RadixSortU64, MatchesStdSort) {
  Rng rng{13};
  std::vector<std::uint64_t> xs;
  for (int i = 0; i < 4096; ++i) {
    // Cluster in a narrow band so most byte passes are skippable, plus a
    // few full-range outliers so the high passes still run.
    xs.push_back(rng.bernoulli(0.05)
                     ? (static_cast<std::uint64_t>(rng.index(1u << 31)) << 33) ^
                           rng.index(1u << 31)
                     : 0xABCD000000ULL + rng.index(1 << 16));
  }
  auto expected = xs;
  std::sort(expected.begin(), expected.end());
  radix_sort(xs);
  EXPECT_EQ(xs, expected);
}

TEST(SortedFinite, LargeColumnCrossesRadixThresholdConsistently) {
  Rng rng{17};
  std::vector<double> xs;
  for (int i = 0; i < 10000; ++i) {
    xs.push_back(rng.bernoulli(0.02) ? kNan : rng.normal(0.0, 100.0));
  }
  std::size_t dropped = 0;
  const auto fast = sorted_finite(xs, &dropped);
  std::vector<double> slow;
  for (const double x : xs) {
    if (!std::isnan(x)) slow.push_back(x);
  }
  std::sort(slow.begin(), slow.end());
  EXPECT_EQ(dropped + slow.size(), xs.size());
  EXPECT_EQ(fast, slow);
}

TEST(SortPermutation, IsStableAndOrdersKeys) {
  const std::vector<std::uint64_t> keys{30, 10, 20, 10, 30, 10};
  const auto perm = sort_permutation(keys);
  ASSERT_EQ(perm.size(), keys.size());
  // Ascending keys; ties keep original order (stability).
  EXPECT_EQ(perm, (std::vector<std::uint32_t>{1, 3, 5, 2, 0, 4}));
}

TEST(GroupByKey, SegmentsRowsByAscendingKey) {
  const std::vector<std::uint64_t> keys{7, 3, 7, 3, 3, 9};
  const auto g = group_by_key(keys);
  ASSERT_EQ(g.keys, (std::vector<std::uint64_t>{3, 7, 9}));
  ASSERT_EQ(g.offsets, (std::vector<std::uint32_t>{0, 3, 5, 6}));
  // Group "3" holds rows 1, 3, 4 in original order.
  EXPECT_EQ(g.order[0], 1u);
  EXPECT_EQ(g.order[1], 3u);
  EXPECT_EQ(g.order[2], 4u);
  EXPECT_EQ(g.order[3], 0u);
  EXPECT_EQ(g.order[4], 2u);
  EXPECT_EQ(g.order[5], 5u);
}

TEST(GroupByKey, EmptyInput) {
  const auto g = group_by_key(std::vector<std::uint64_t>{});
  EXPECT_TRUE(g.keys.empty());
  EXPECT_EQ(g.offsets, (std::vector<std::uint32_t>{0}));
  EXPECT_TRUE(g.order.empty());
}

TEST(EcdfEvalSorted, MatchesScalarUpperBound) {
  Rng rng{19};
  std::vector<double> sample;
  for (int i = 0; i < 777; ++i) sample.push_back(rng.normal(0.0, 1.0));
  std::sort(sample.begin(), sample.end());
  std::vector<double> queries;
  for (int i = 0; i < 300; ++i) queries.push_back(rng.normal(0.0, 1.5));
  std::sort(queries.begin(), queries.end());
  std::vector<double> out(queries.size());
  ecdf_eval_sorted(sample, queries, out);
  const auto n = static_cast<double>(sample.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const auto it = std::upper_bound(sample.begin(), sample.end(), queries[i]);
    EXPECT_EQ(out[i], static_cast<double>(it - sample.begin()) / n) << i;
  }
}

TEST(EcdfEvalSorted, TypedErrors) {
  std::vector<double> out(1);
  EXPECT_THROW(ecdf_eval_sorted(std::vector<double>{}, std::vector<double>{1.0}, out),
               EmptyColumn);
  const std::vector<double> sample{1, 2, 3};
  std::vector<double> small(1);
  EXPECT_THROW(ecdf_eval_sorted(sample, std::vector<double>{1.0, 2.0}, small),
               InvalidArgument);
  std::vector<double> out2(2);
  EXPECT_THROW(ecdf_eval_sorted(sample, std::vector<double>{2.0, 1.0}, out2),
               InvalidArgument);
}

TEST(SortedColumn, EmptyColumnThrowsTypedError) {
  const SortedColumn empty{std::vector<double>{}};
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_THROW((void)empty.quantile(0.5), EmptyColumn);
  EXPECT_THROW((void)empty.min(), EmptyColumn);
  EXPECT_THROW((void)empty.max(), EmptyColumn);
  const std::vector<double> qs{0.5};
  EXPECT_THROW((void)empty.quantiles(qs), EmptyColumn);
  // EmptyColumn is a typed refinement of the existing InvalidArgument
  // contract, so callers catching the base class keep working.
  EXPECT_THROW((void)empty.quantile(0.5), InvalidArgument);
}

TEST(SortedColumn, AllNanBehavesLikeEmptyButCountsDrops) {
  const SortedColumn col{std::vector<double>{kNan, kNan, kNan}};
  EXPECT_TRUE(col.empty());
  EXPECT_EQ(col.dropped(), 3u);
  EXPECT_THROW((void)col.quantile(0.5), EmptyColumn);
}

TEST(SortedColumn, SingleValue) {
  const SortedColumn col{std::vector<double>{42.0}};
  EXPECT_EQ(col.size(), 1u);
  EXPECT_DOUBLE_EQ(col.quantile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(col.quantile(0.5), 42.0);
  EXPECT_DOUBLE_EQ(col.quantile(1.0), 42.0);
  EXPECT_DOUBLE_EQ(col.min(), 42.0);
  EXPECT_DOUBLE_EQ(col.max(), 42.0);
}

TEST(SortedColumn, QuantilesMatchScalarPath) {
  Rng rng{23};
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(rng.lognormal(0.0, 2.0));
  const SortedColumn col{xs};
  const std::vector<double> qs{0.0, 0.05, 0.5, 0.95, 1.0};
  const auto batch = col.quantiles(qs);
  ASSERT_EQ(batch.size(), qs.size());
  for (std::size_t i = 0; i < qs.size(); ++i) {
    EXPECT_DOUBLE_EQ(batch[i], quantile(xs, qs[i])) << qs[i];
  }
  EXPECT_DOUBLE_EQ(col.min(), col.quantile(0.0));
  EXPECT_DOUBLE_EQ(col.max(), col.quantile(1.0));
}

TEST(SortedColumn, AdoptSortedSkipsCopyAndFilter) {
  std::vector<double> sorted{1.0, 2.0, 3.0};
  const double* data = sorted.data();
  const auto col = SortedColumn::adopt_sorted(std::move(sorted));
  EXPECT_EQ(col.values().data(), data);  // genuinely copy-free
  EXPECT_EQ(col.dropped(), 0u);
  EXPECT_DOUBLE_EQ(col.quantile(0.5), 2.0);
}

}  // namespace
}  // namespace bblab::stats
