#!/usr/bin/env bash
# Failure-path contract of the bblab CLI: every bad invocation — unknown
# command, unknown option, option missing its value, subcommand missing
# its argument — prints the usage text to stderr, prints NOTHING to
# stdout, and exits 2.
set -u

BBLAB=$1
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
fails=0

check() {
  local desc=$1
  shift
  local out err code
  out=$("$@" 2>"$WORK/err")
  code=$?
  err=$(cat "$WORK/err")
  if [ "$code" -ne 2 ]; then
    echo "FAIL ($desc): exit code $code, want 2"
    fails=1
  fi
  if [ -n "$out" ]; then
    echo "FAIL ($desc): stdout not empty: '$out'"
    fails=1
  fi
  case "$err" in
    *"usage: bblab"*) ;;
    *)
      echo "FAIL ($desc): stderr does not show usage"
      fails=1
      ;;
  esac
}

check "no command"              "$BBLAB"
check "unknown command"         "$BBLAB" frobnicate
check "unknown option"          "$BBLAB" markets --bogus
check "option missing value"    "$BBLAB" generate --seed
check "cache-dir missing value" "$BBLAB" generate --cache-dir
check "experiment no name"      "$BBLAB" experiment
check "experiment bad name"     "$BBLAB" experiment tab99
check "figure no name"          "$BBLAB" figure
check "figure bad name"         "$BBLAB" figure fig99
check "ingest no file"          "$BBLAB" ingest
check "pack no path"            "$BBLAB" pack
check "cat no path"             "$BBLAB" cat
check "cache no subcommand"     "$BBLAB" cache
check "cache bad subcommand"    "$BBLAB" cache frobnicate
check "cache rm no key"         "$BBLAB" cache rm
check "checkpoint missing dir"  "$BBLAB" generate --checkpoint
check "resume sans checkpoint"  "$BBLAB" generate --resume
check "deadline missing value"  "$BBLAB" generate --deadline
check "retries zero"            "$BBLAB" generate --retries 0
check "fs-faults missing spec"  "$BBLAB" generate --fs-faults
check "fs-faults bad spec"      "$BBLAB" generate --fs-faults bogus@3
check "fs-faults bad index"     "$BBLAB" generate --fs-faults eio@x
check "log-level missing value" "$BBLAB" generate --log-level
check "log-level invalid"       "$BBLAB" generate --log-level verbose
check "metrics-out no path"     "$BBLAB" generate --metrics-out
check "trace-out no path"       "$BBLAB" generate --trace-out

if [ "$fails" -ne 0 ]; then
  exit 1
fi
echo "PASS: all bad invocations -> usage on stderr, empty stdout, exit 2"
