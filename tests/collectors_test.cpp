#include "measurement/collectors.h"

#include <gtest/gtest.h>

#include <numeric>

#include "core/rng.h"

namespace bblab::measurement {
namespace {

netsim::BinnedUsage constant_truth(std::size_t bins, double bin_s, double down_rate_bps,
                                   double bt_from_bin = 1e18) {
  netsim::BinnedUsage truth;
  truth.start = 0.0;
  truth.bin_width_s = bin_s;
  truth.down_bytes.assign(bins, down_rate_bps / 8.0 * bin_s);
  truth.up_bytes.assign(bins, down_rate_bps / 80.0 * bin_s);
  truth.bt_active_s.assign(bins, 0.0);
  for (std::size_t i = 0; i < bins; ++i) {
    if (static_cast<double>(i) >= bt_from_bin) truth.bt_active_s[i] = bin_s;
  }
  return truth;
}

netsim::DiurnalModel diurnal() {
  return netsim::DiurnalModel{netsim::DiurnalParams{}, SimClock{2011}};
}

TEST(DasuCollector, ReconstructsConstantRate) {
  DasuCollectorParams params;
  params.availability_floor = 1.0;  // always observing
  params.sample_loss = 0.0;
  const DasuCollector collector{params, diurnal()};
  Rng rng{3};
  const auto truth = constant_truth(2880, 30.0, 2e6);  // 1 day at 2 Mbps
  const auto series = collector.collect(truth, 0.0, rng);
  ASSERT_EQ(series.size(), 2880u);
  for (const auto& s : series.samples) {
    EXPECT_NEAR(s.down.mbps(), 2.0, 0.01);
    EXPECT_FALSE(s.bt_active);
  }
}

TEST(DasuCollector, MissedSamplesFoldIntoLongerIntervals) {
  DasuCollectorParams params;
  params.availability_floor = 0.3;
  params.sample_loss = 0.1;
  const DasuCollector collector{params, diurnal()};
  Rng rng{5};
  const auto truth = constant_truth(2880, 30.0, 2e6);
  const auto series = collector.collect(truth, 0.0, rng);
  ASSERT_GT(series.size(), 100u);
  ASSERT_LT(series.size(), 2880u);
  double covered = 0.0;
  for (const auto& s : series.samples) {
    covered += s.interval_s;
    // Rate over any gap still reconstructs the constant rate exactly.
    EXPECT_NEAR(s.down.mbps(), 2.0, 0.01);
  }
  EXPECT_LE(covered, 2880 * 30.0 + 1e-6);
}

TEST(DasuCollector, PeakHourBiasInSampling) {
  DasuCollectorParams params;
  params.availability_floor = 0.1;
  params.sample_loss = 0.0;
  const DasuCollector collector{params, diurnal()};
  Rng rng{7};
  const auto truth = constant_truth(2880 * 7, 30.0, 1e6);  // one week
  const auto series = collector.collect(truth, 0.0, rng);
  std::size_t evening = 0;
  std::size_t morning = 0;
  for (const auto& s : series.samples) {
    const double hour = SimClock::hour_of_day(s.time);
    if (hour >= 19 && hour < 23) ++evening;
    if (hour >= 5 && hour < 9) ++morning;
  }
  EXPECT_GT(evening, morning * 2);
}

TEST(DasuCollector, CountersSurviveWrap) {
  DasuCollectorParams params;
  params.availability_floor = 1.0;
  params.sample_loss = 0.0;
  params.upnp_share = 1.0;  // force the 32-bit wrapping counter
  const DasuCollector collector{params, diurnal()};
  Rng rng{9};
  // 50 Mbps for a day: ~540 GB, dozens of 32-bit wraps.
  const auto truth = constant_truth(2880, 30.0, 50e6);
  const auto series = collector.collect(truth, 0.0, rng);
  for (const auto& s : series.samples) {
    EXPECT_NEAR(s.down.mbps(), 50.0, 0.5);
  }
}

TEST(DasuCollector, FlagsBitTorrentPeriods) {
  DasuCollectorParams params;
  params.availability_floor = 1.0;
  params.sample_loss = 0.0;
  const DasuCollector collector{params, diurnal()};
  Rng rng{11};
  const auto truth = constant_truth(100, 30.0, 1e6, /*bt_from_bin=*/50);
  const auto series = collector.collect(truth, 0.0, rng);
  ASSERT_EQ(series.size(), 100u);
  for (std::size_t i = 0; i < series.size(); ++i) {
    EXPECT_EQ(series.samples[i].bt_active, i >= 50) << i;
  }
}

TEST(DasuCollector, TotalSampleLossYieldsEmptySeries) {
  DasuCollectorParams params;
  params.availability_floor = 1.0;
  params.sample_loss = 1.0;  // host is up but every poll is dropped
  const DasuCollector collector{params, diurnal()};
  Rng rng{13};
  const auto series = collector.collect(constant_truth(100, 30.0, 1e6), 0.0, rng);
  EXPECT_EQ(series.size(), 0u);
}

TEST(DasuCollector, ZeroAvailabilityFloorFollowsDiurnalOnly) {
  DasuCollectorParams params;
  params.availability_floor = 0.0;  // availability is pure diurnal activity
  params.sample_loss = 0.0;
  const DasuCollector collector{params, diurnal()};
  Rng rng{15};
  const auto truth = constant_truth(2880 * 7, 30.0, 1e6);  // one week
  const auto series = collector.collect(truth, 0.0, rng);
  ASSERT_GT(series.size(), 0u);
  ASSERT_LT(series.size(), truth.bins());
  // Sparse sampling must not distort the reconstructed rate.
  for (const auto& s : series.samples) {
    EXPECT_NEAR(s.down.mbps(), 1.0, 0.01);
  }
}

TEST(GatewayCollector, AggregatesHourly) {
  const GatewayCollector collector;
  const auto truth = constant_truth(2880, 30.0, 4e6);  // 1 day at 4 Mbps
  const auto series = collector.collect(truth);
  ASSERT_EQ(series.size(), 24u);
  for (const auto& s : series.samples) {
    EXPECT_NEAR(s.down.mbps(), 4.0, 1e-9);
    EXPECT_DOUBLE_EQ(s.interval_s, 3600.0);
    EXPECT_FALSE(s.bt_active);  // gateways cannot see applications
  }
}

TEST(GatewayCollector, HandlesPartialTrailingWindow) {
  const GatewayCollector collector;
  const auto truth = constant_truth(130, 30.0, 4e6);  // 65 minutes
  const auto series = collector.collect(truth);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_DOUBLE_EQ(series.samples[0].interval_s, 3600.0);
  EXPECT_DOUBLE_EQ(series.samples[1].interval_s, 300.0);
  EXPECT_NEAR(series.samples[1].down.mbps(), 4.0, 1e-9);
}

TEST(GatewayCollector, ZeroBinWindowYieldsEmptySeries) {
  const GatewayCollector collector;
  netsim::BinnedUsage truth;
  truth.start = 0.0;
  truth.bin_width_s = 30.0;
  const auto series = collector.collect(truth);
  EXPECT_EQ(series.size(), 0u);
  EXPECT_EQ(summarize(series).samples, 0u);
}

TEST(GatewayCollector, ConservesBytes) {
  const GatewayCollector collector;
  const auto truth = constant_truth(1000, 30.0, 3.3e6);
  const auto series = collector.collect(truth);
  const double truth_total =
      std::accumulate(truth.down_bytes.begin(), truth.down_bytes.end(), 0.0);
  double series_total = 0.0;
  for (const auto& s : series.samples) {
    series_total += s.down.bytes_per_sec() * s.interval_s;
  }
  EXPECT_NEAR(series_total, truth_total, 1.0);
}

}  // namespace
}  // namespace bblab::measurement
