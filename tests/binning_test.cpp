#include "stats/binning.h"

#include <gtest/gtest.h>

#include "core/error.h"

namespace bblab::stats {
namespace {

TEST(CapacityBins, PaperExamples) {
  // (0.1, 0.2] is bin 1; (0.2, 0.4] bin 2; ... (51.2, 102.4] bin 10.
  EXPECT_EQ(CapacityBins::bin_of(Rate::from_kbps(150)), 1);
  EXPECT_EQ(CapacityBins::bin_of(Rate::from_kbps(200)), 1);  // inclusive top
  EXPECT_EQ(CapacityBins::bin_of(Rate::from_kbps(201)), 2);
  EXPECT_EQ(CapacityBins::bin_of(Rate::from_mbps(1.0)), 4);  // (0.8, 1.6]
}

TEST(CapacityBins, EdgesAreConsistent) {
  for (int k = 1; k <= 12; ++k) {
    EXPECT_DOUBLE_EQ(CapacityBins::lower_edge(k).bps(),
                     CapacityBins::upper_edge(k - 1).bps());
    EXPECT_DOUBLE_EQ(CapacityBins::upper_edge(k).bps(),
                     2.0 * CapacityBins::lower_edge(k).bps());
    // Midpoint lies strictly inside the bin.
    EXPECT_GT(CapacityBins::midpoint(k).bps(), CapacityBins::lower_edge(k).bps());
    EXPECT_LT(CapacityBins::midpoint(k).bps(), CapacityBins::upper_edge(k).bps());
  }
}

TEST(CapacityBins, BinOfRoundTripsEdges) {
  for (int k = 1; k <= 12; ++k) {
    EXPECT_EQ(CapacityBins::bin_of(CapacityBins::upper_edge(k)), k);
    EXPECT_EQ(CapacityBins::bin_of(CapacityBins::midpoint(k)), k);
    // Just above the lower edge belongs to bin k.
    EXPECT_EQ(CapacityBins::bin_of(CapacityBins::lower_edge(k) * 1.0001), k);
  }
}

TEST(CapacityBins, TinyCapacitiesAreBinZero) {
  EXPECT_EQ(CapacityBins::bin_of(Rate::from_kbps(50)), 0);
  EXPECT_EQ(CapacityBins::bin_of(Rate::from_kbps(100)), 0);
}

TEST(CapacityBins, Labels) {
  EXPECT_EQ(CapacityBins::label(4), "(0.8, 1.6]");
  EXPECT_EQ(CapacityBins::label(10), "(51.2, 102.4]");
  EXPECT_EQ(CapacityBins::label(0), "(0, 0.1]");
}

TEST(ServiceTiers, PaperTierBoundaries) {
  EXPECT_EQ(tier_of(Rate::from_kbps(512)), ServiceTier::kBelow1);
  EXPECT_EQ(tier_of(Rate::from_mbps(1)), ServiceTier::k1to8);
  EXPECT_EQ(tier_of(Rate::from_mbps(7.9)), ServiceTier::k1to8);
  EXPECT_EQ(tier_of(Rate::from_mbps(8)), ServiceTier::k8to16);
  EXPECT_EQ(tier_of(Rate::from_mbps(16)), ServiceTier::k16to32);
  EXPECT_EQ(tier_of(Rate::from_mbps(32)), ServiceTier::kAbove32);
  EXPECT_EQ(tier_of(Rate::from_mbps(100)), ServiceTier::kAbove32);
}

TEST(ServiceTiers, LabelsAndEnumeration) {
  EXPECT_EQ(all_tiers().size(), 5u);
  EXPECT_EQ(tier_label(ServiceTier::kBelow1), "<1 Mbps");
  EXPECT_EQ(tier_label(ServiceTier::kAbove32), ">32 Mbps");
}

TEST(EdgeBins, RightClosedSemantics) {
  const EdgeBins bins{{0.0, 25.0, 60.0}};
  EXPECT_EQ(bins.count(), 2u);
  EXPECT_FALSE(bins.bin_of(0.0).has_value());   // at/below the bottom edge
  EXPECT_EQ(bins.bin_of(10.0).value(), 0u);
  EXPECT_EQ(bins.bin_of(25.0).value(), 0u);     // inclusive upper edge
  EXPECT_EQ(bins.bin_of(25.01).value(), 1u);
  EXPECT_EQ(bins.bin_of(60.0).value(), 1u);
  EXPECT_FALSE(bins.bin_of(60.01).has_value());
}

TEST(EdgeBins, Validation) {
  EXPECT_THROW(EdgeBins{std::vector<double>{1.0}}, InvalidArgument);
  EXPECT_THROW(EdgeBins(std::vector<double>{2.0, 1.0}), InvalidArgument);
}

TEST(EdgeBins, LabelsAndAccessors) {
  const EdgeBins bins{{0.5, 1.0, 4.0}};
  EXPECT_DOUBLE_EQ(bins.lower(1), 1.0);
  EXPECT_DOUBLE_EQ(bins.upper(1), 4.0);
  EXPECT_EQ(bins.label(0), "(0.5, 1]");
}

}  // namespace
}  // namespace bblab::stats
