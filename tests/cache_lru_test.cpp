// LRU semantics of the artifact cache: hits refresh last-access, and
// `trim` evicts oldest-accessed entries first until under budget.
#include "store/cache.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <string>

#include "dataset/generator.h"
#include "store/fingerprint.h"

namespace bblab::store {
namespace {

dataset::StudyDataset tiny_dataset(std::uint64_t seed) {
  dataset::StudyConfig config;
  config.seed = seed;
  config.population_scale = 0.005;
  config.window_days = 0.1;
  config.fcc_users = 10;
  config.last_year = config.first_year;
  return dataset::StudyGenerator{market::World::builtin(), config}.generate();
}

class CacheLruTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::path{::testing::TempDir()} /
            ("cache_lru_" + std::to_string(::getpid()));
    std::filesystem::remove_all(root_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(root_, ec);
  }

  /// Store a dataset generated from `seed`; returns its fingerprint.
  Fingerprint put(const ArtifactCache& cache, std::uint64_t seed) {
    const auto ds = tiny_dataset(seed);
    const auto key = dataset_fingerprint(ds.config, market::World::builtin());
    cache.store(key, ds);
    return key;
  }

  /// Backdate an entry's mtime so access ordering is unambiguous without
  /// sleeping through filesystem timestamp granularity.
  static void age(const ArtifactCache& cache, const Fingerprint& key,
                  std::chrono::seconds by) {
    const auto path = cache.entry_path(key);
    std::filesystem::last_write_time(
        path, std::filesystem::last_write_time(path) - by);
  }

  std::filesystem::path root_;
};

TEST_F(CacheLruTest, LoadBumpsLastAccess) {
  const ArtifactCache cache{root_};
  const auto key = put(cache, 1);
  age(cache, key, std::chrono::seconds{3600});
  const auto before = std::filesystem::last_write_time(cache.entry_path(key));

  ASSERT_TRUE(cache.load(key).has_value());
  const auto after = std::filesystem::last_write_time(cache.entry_path(key));
  EXPECT_GT(after, before);

  // list() reports the refreshed access time.
  const auto entries = cache.list();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].last_access, after);
}

TEST_F(CacheLruTest, TrimEvictsOldestAccessFirst) {
  const ArtifactCache cache{root_};
  const auto a = put(cache, 1);
  const auto b = put(cache, 2);
  const auto c = put(cache, 3);
  // Access order (oldest → newest): b, c, a.
  age(cache, b, std::chrono::seconds{300});
  age(cache, c, std::chrono::seconds{200});
  age(cache, a, std::chrono::seconds{100});

  const auto size_of = [&](const Fingerprint& k) {
    return std::filesystem::file_size(cache.entry_path(k));
  };
  // Budget for exactly the two most recently accessed entries.
  const auto budget = size_of(a) + size_of(c);
  EXPECT_EQ(cache.trim(budget), 1u);
  EXPECT_FALSE(std::filesystem::exists(cache.entry_path(b)));
  EXPECT_TRUE(std::filesystem::exists(cache.entry_path(a)));
  EXPECT_TRUE(std::filesystem::exists(cache.entry_path(c)));
}

TEST_F(CacheLruTest, HitProtectsEntryFromTrim) {
  const ArtifactCache cache{root_};
  const auto a = put(cache, 1);
  const auto b = put(cache, 2);
  age(cache, a, std::chrono::seconds{300});
  age(cache, b, std::chrono::seconds{200});
  // `a` is oldest — but a hit refreshes it, so trim takes `b` instead.
  ASSERT_TRUE(cache.load(a).has_value());

  const auto budget = std::filesystem::file_size(cache.entry_path(a));
  EXPECT_EQ(cache.trim(budget), 1u);
  EXPECT_TRUE(std::filesystem::exists(cache.entry_path(a)));
  EXPECT_FALSE(std::filesystem::exists(cache.entry_path(b)));
}

TEST_F(CacheLruTest, TrimWithinBudgetIsANoOp) {
  const ArtifactCache cache{root_};
  (void)put(cache, 1);
  EXPECT_EQ(cache.trim(std::numeric_limits<std::uintmax_t>::max()), 0u);
  EXPECT_EQ(cache.list().size(), 1u);
}

TEST_F(CacheLruTest, TrimToZeroEmptiesTheCache) {
  const ArtifactCache cache{root_};
  (void)put(cache, 1);
  (void)put(cache, 2);
  EXPECT_EQ(cache.trim(0), 2u);
  EXPECT_TRUE(cache.list().empty());
}

}  // namespace
}  // namespace bblab::store
