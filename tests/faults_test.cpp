// The fault-injection layer's contract: everything about a FaultPlan is
// deterministic in (seed, stream id), knobs never perturb each other's
// randomness, and the damage it does to series and CSV text is exactly
// the documented damage.
#include "faults/fault_plan.h"

#include <gtest/gtest.h>

#include <string>

#include "core/error.h"
#include "core/units.h"
#include "measurement/pipeline.h"

namespace bblab::faults {
namespace {

TEST(FaultPlan, DefaultsAreClean) {
  const FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_FALSE(plan.any_series_faults());
  EXPECT_FALSE(plan.any_csv_faults());
  EXPECT_EQ(plan.summary(), "no faults");
}

TEST(FaultPlan, ParseSetsKnobs) {
  const auto plan = FaultPlan::parse(
      "churn=0.1,outage_h=3 blackout=0.2,reset=0.05 wrap=0.02,skew=0.5,"
      "skew_s=60,dup=0.01,corrupt=0.02,truncate=0.03,fail=0.04,seed=99");
  EXPECT_DOUBLE_EQ(plan.churn_probability, 0.1);
  EXPECT_DOUBLE_EQ(plan.mean_outage_hours, 3.0);
  EXPECT_DOUBLE_EQ(plan.blackout_probability, 0.2);
  EXPECT_DOUBLE_EQ(plan.reset_probability, 0.05);
  EXPECT_DOUBLE_EQ(plan.spurious_wrap_probability, 0.02);
  EXPECT_DOUBLE_EQ(plan.clock_skew_probability, 0.5);
  EXPECT_DOUBLE_EQ(plan.max_clock_skew_s, 60.0);
  EXPECT_DOUBLE_EQ(plan.row_duplicate_probability, 0.01);
  EXPECT_DOUBLE_EQ(plan.row_corrupt_probability, 0.02);
  EXPECT_DOUBLE_EQ(plan.row_truncate_probability, 0.03);
  EXPECT_DOUBLE_EQ(plan.household_failure_probability, 0.04);
  EXPECT_EQ(plan.seed, 99u);
  EXPECT_TRUE(plan.any_series_faults());
  EXPECT_TRUE(plan.any_csv_faults());
}

TEST(FaultPlan, ParseLayersOnBase) {
  FaultPlan base;
  base.seed = 7;
  base.churn_probability = 0.4;
  const auto plan = FaultPlan::parse("blackout=0.3", base);
  EXPECT_EQ(plan.seed, 7u);
  EXPECT_DOUBLE_EQ(plan.churn_probability, 0.4);
  EXPECT_DOUBLE_EQ(plan.blackout_probability, 0.3);
}

TEST(FaultPlan, ParseRejectsGarbage) {
  EXPECT_THROW((void)FaultPlan::parse("bogus=1"), InvalidArgument);
  EXPECT_THROW((void)FaultPlan::parse("churn"), InvalidArgument);
  EXPECT_THROW((void)FaultPlan::parse("churn=abc"), InvalidArgument);
  EXPECT_THROW((void)FaultPlan::parse("churn=0.1x"), InvalidArgument);
}

TEST(Materialize, DeterministicPerStream) {
  auto plan = FaultPlan::parse("churn=0.5,blackout=0.5,reset=0.5,wrap=0.5,skew=0.5");
  const auto a = materialize(plan, 42, 0.0, 7 * kDay);
  const auto b = materialize(plan, 42, 0.0, 7 * kDay);
  EXPECT_EQ(a.dropped.size(), b.dropped.size());
  for (std::size_t i = 0; i < a.dropped.size(); ++i) {
    EXPECT_EQ(a.dropped[i].begin, b.dropped[i].begin);
    EXPECT_EQ(a.dropped[i].end, b.dropped[i].end);
  }
  EXPECT_EQ(a.clock_skew_s, b.clock_skew_s);
  EXPECT_EQ(a.reset_time, b.reset_time);
  EXPECT_EQ(a.spurious_wrap_time, b.spurious_wrap_time);
  EXPECT_EQ(a.fail_household, b.fail_household);

  // Different streams diverge (probabilistically certain over 64 streams).
  bool any_different = false;
  for (std::uint64_t s = 0; s < 64 && !any_different; ++s) {
    const auto other = materialize(plan, 1000 + s, 0.0, 7 * kDay);
    any_different = other.fail_household != a.fail_household ||
                    other.dropped.size() != a.dropped.size() ||
                    other.clock_skew_s != a.clock_skew_s;
  }
  EXPECT_TRUE(any_different);
}

TEST(Materialize, KnobsDrawIndependently) {
  // Turning the wrap knob on must not move the churn windows: every
  // decision draws unconditionally in a fixed order.
  const auto just_churn = FaultPlan::parse("churn=1.0");
  const auto churn_and_wrap = FaultPlan::parse("churn=1.0,wrap=1.0,fail=1.0");
  for (std::uint64_t stream = 1; stream <= 32; ++stream) {
    const auto a = materialize(just_churn, stream, 0.0, 3 * kDay);
    const auto b = materialize(churn_and_wrap, stream, 0.0, 3 * kDay);
    ASSERT_EQ(a.dropped.size(), 1u) << stream;
    ASSERT_EQ(b.dropped.size(), 1u) << stream;
    EXPECT_EQ(a.dropped[0].begin, b.dropped[0].begin) << stream;
    EXPECT_EQ(a.dropped[0].end, b.dropped[0].end) << stream;
    EXPECT_FALSE(a.fail_household);
    EXPECT_TRUE(b.fail_household);
    EXPECT_TRUE(b.spurious_wrap_time.has_value());
  }
}

TEST(Materialize, EmptyPlanProducesNoFaults) {
  const auto hf = materialize(FaultPlan{}, 5, 0.0, kDay);
  EXPECT_TRUE(hf.empty());
  EXPECT_TRUE(hf.dropped.empty());
  EXPECT_FALSE(hf.fail_household);
}

TEST(ApplyFaults, DropsZeroesSpikesAndSkews) {
  measurement::UsageSeries series;
  for (int i = 0; i < 10; ++i) {
    measurement::UsageSample s;
    s.time = i * 30.0;
    s.interval_s = 30.0;
    s.down = Rate::from_mbps(1.0);
    s.up = Rate::from_kbps(100.0);
    series.samples.push_back(s);
  }

  HouseholdFaults hf;
  hf.dropped.push_back({60.0, 120.0});  // samples at t=60, t=90
  hf.reset_time = 155.0;                // inside the t=150 sample
  hf.spurious_wrap_time = 215.0;        // inside the t=210 sample
  hf.clock_skew_s = 10.0;
  measurement::apply_faults(series, hf);

  ASSERT_EQ(series.size(), 8u);
  // All surviving timestamps carry the skew.
  EXPECT_DOUBLE_EQ(series.samples[0].time, 10.0);
  // The reset sample (originally t=150) reports zero traffic.
  const auto& reset_sample = series.samples[3];
  EXPECT_DOUBLE_EQ(reset_sample.time, 160.0);
  EXPECT_DOUBLE_EQ(reset_sample.down.bps(), 0.0);
  EXPECT_DOUBLE_EQ(reset_sample.up.bps(), 0.0);
  // The wrap sample gains exactly 2^32 bytes over its interval.
  const auto& wrap_sample = series.samples[5];
  EXPECT_DOUBLE_EQ(wrap_sample.time, 220.0);
  const double expected =
      Rate::from_mbps(1.0).bps() + rate_over(4294967296.0, 30.0).bps();
  EXPECT_DOUBLE_EQ(wrap_sample.down.bps(), expected);
}

TEST(CorruptCsv, IdentityWithoutCsvFaults) {
  const std::string text = "h1,h2\n1,2\n3,4\n";
  EXPECT_EQ(corrupt_csv(text, FaultPlan{}), text);
  EXPECT_EQ(corrupt_csv(text, FaultPlan::parse("churn=0.9,fail=0.9")), text);
}

TEST(CorruptCsv, DeterministicAndHeaderPreserved) {
  std::string text = "user_id,value\n";
  for (int i = 0; i < 200; ++i) {
    text += std::to_string(i) + "," + std::to_string(i * 10) + "\n";
  }
  const auto plan = FaultPlan::parse("dup=0.1,corrupt=0.2,truncate=0.1,seed=5");
  const auto once = corrupt_csv(text, plan, 1);
  const auto twice = corrupt_csv(text, plan, 1);
  EXPECT_EQ(once, twice);
  EXPECT_NE(once, text);  // with 200 rows, some damage is certain
  EXPECT_EQ(once.substr(0, once.find('\n')), "user_id,value");
  // A different salt damages different rows.
  EXPECT_NE(corrupt_csv(text, plan, 2), once);
}

TEST(CorruptCsv, DuplicateEmitsCleanCopyFirst) {
  const std::string text = "h\nrow-a\nrow-b\n";
  const auto plan = FaultPlan::parse("dup=1.0");
  const auto out = corrupt_csv(text, plan);
  EXPECT_EQ(out, "h\nrow-a\nrow-a\nrow-b\nrow-b\n");
}

}  // namespace
}  // namespace bblab::faults
