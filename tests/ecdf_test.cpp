#include "stats/ecdf.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "core/error.h"
#include "core/rng.h"

namespace bblab::stats {
namespace {

TEST(Ecdf, EvaluatesStepFunction) {
  const Ecdf e{std::vector<double>{1, 2, 3, 4}};
  EXPECT_DOUBLE_EQ(e(0.5), 0.0);
  EXPECT_DOUBLE_EQ(e(1.0), 0.25);
  EXPECT_DOUBLE_EQ(e(2.5), 0.5);
  EXPECT_DOUBLE_EQ(e(4.0), 1.0);
  EXPECT_DOUBLE_EQ(e(100.0), 1.0);
}

TEST(Ecdf, EmptyBehaves) {
  const Ecdf e;
  EXPECT_TRUE(e.empty());
  EXPECT_DOUBLE_EQ(e(1.0), 0.0);
  EXPECT_THROW(e.min(), InvalidArgument);
  // The operations that must read at least one value throw the typed
  // error instead of reading element 0 of nothing.
  EXPECT_THROW((void)e.min(), EmptyColumn);
  EXPECT_THROW((void)e.max(), EmptyColumn);
  EXPECT_THROW((void)e.inverse(0.5), EmptyColumn);
  std::vector<double> out(1);
  EXPECT_THROW(e.evaluate_sorted(std::vector<double>{1.0}, out), EmptyColumn);
}

TEST(Ecdf, DropsNanInputAndCountsIt) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const Ecdf dirty{std::vector<double>{nan, 3, 1, nan, 2}};
  const Ecdf clean{std::vector<double>{3, 1, 2}};
  EXPECT_EQ(dirty.size(), 3u);
  EXPECT_EQ(dirty.dropped(), 2u);
  EXPECT_EQ(clean.dropped(), 0u);
  for (const double x : {0.5, 1.0, 2.5, 3.0}) {
    EXPECT_DOUBLE_EQ(dirty(x), clean(x)) << x;
  }
  const Ecdf all_nan{std::vector<double>{nan, nan}};
  EXPECT_TRUE(all_nan.empty());
  EXPECT_EQ(all_nan.dropped(), 2u);
}

TEST(Ecdf, BatchEvaluationMatchesScalar) {
  Rng rng{31};
  std::vector<double> xs;
  for (int i = 0; i < 600; ++i) xs.push_back(rng.lognormal(0.0, 1.0));
  const Ecdf e{xs};
  std::vector<double> queries;
  for (int i = 0; i < 200; ++i) queries.push_back(rng.lognormal(0.0, 1.2));
  std::sort(queries.begin(), queries.end());
  std::vector<double> out(queries.size());
  e.evaluate_sorted(queries, out);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(out[i], e(queries[i])) << i;
  }
}

TEST(Ecdf, AdoptsPresortedColumn) {
  auto col = SortedColumn::adopt_sorted(std::vector<double>{1, 2, 3, 4});
  const Ecdf e{std::move(col)};
  EXPECT_EQ(e.size(), 4u);
  EXPECT_DOUBLE_EQ(e(2.5), 0.5);
}

TEST(Ecdf, InverseMatchesQuantiles) {
  const Ecdf e{std::vector<double>{10, 20, 30, 40, 50}};
  EXPECT_DOUBLE_EQ(e.inverse(0.0), 10.0);
  EXPECT_DOUBLE_EQ(e.inverse(0.5), 30.0);
  EXPECT_DOUBLE_EQ(e.inverse(1.0), 50.0);
}

TEST(Ecdf, PointsAreMonotone) {
  Rng rng{3};
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(rng.normal(0, 1));
  const Ecdf e{xs};
  const auto pts = e.points();
  ASSERT_EQ(pts.size(), xs.size());
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GE(pts[i].x, pts[i - 1].x);
    EXPECT_GT(pts[i].f, pts[i - 1].f);
  }
  EXPECT_DOUBLE_EQ(pts.back().f, 1.0);
}

TEST(Ecdf, SampledHasRequestedResolution) {
  Rng rng{5};
  std::vector<double> xs;
  for (int i = 0; i < 100; ++i) xs.push_back(rng.uniform());
  const Ecdf e{xs};
  const auto pts = e.sampled(11);
  ASSERT_EQ(pts.size(), 11u);
  EXPECT_DOUBLE_EQ(pts.front().f, 0.0);
  EXPECT_DOUBLE_EQ(pts.back().f, 1.0);
  EXPECT_THROW(e.sampled(1), InvalidArgument);
}

TEST(Ecdf, SummaryMentionsMedian) {
  const Ecdf e{std::vector<double>{1, 2, 3}};
  EXPECT_NE(e.summary().find("p50=2"), std::string::npos);
  EXPECT_EQ(Ecdf{}.summary(), "(empty)");
}

TEST(KsStatistic, IdenticalSamplesAreZero) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(ks_statistic(Ecdf{xs}, Ecdf{xs}), 0.0);
}

TEST(KsStatistic, DisjointSamplesAreOne) {
  EXPECT_DOUBLE_EQ(
      ks_statistic(Ecdf{std::vector<double>{1, 2}}, Ecdf{std::vector<double>{10, 11}}),
      1.0);
}

TEST(KsStatistic, SameDistributionIsSmall) {
  Rng rng{7};
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 5000; ++i) a.push_back(rng.normal(0, 1));
  for (int i = 0; i < 5000; ++i) b.push_back(rng.normal(0, 1));
  EXPECT_LT(ks_statistic(Ecdf{a}, Ecdf{b}), 0.05);
}

TEST(KsStatistic, MergeMatchesBruteForceSup) {
  // The O(n+m) merge must equal the definition: the sup of |F1 - F2|
  // evaluated at every sample point of both distributions.
  Rng rng{41};
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> a;
    std::vector<double> b;
    const int na = 5 + static_cast<int>(rng.index(200));
    const int nb = 5 + static_cast<int>(rng.index(200));
    for (int i = 0; i < na; ++i) a.push_back(rng.normal(0.0, 1.0));
    for (int i = 0; i < nb; ++i) {
      b.push_back(rng.bernoulli(0.3) ? a[rng.index(a.size())]  // forced ties
                                     : rng.normal(0.5, 1.2));
    }
    const Ecdf ea{a};
    const Ecdf eb{b};
    double brute = 0.0;
    for (const double x : ea.sorted()) brute = std::max(brute, std::abs(ea(x) - eb(x)));
    for (const double x : eb.sorted()) brute = std::max(brute, std::abs(ea(x) - eb(x)));
    EXPECT_DOUBLE_EQ(ks_statistic(ea, eb), brute) << trial;
  }
}

TEST(KsStatistic, ShiftedDistributionIsLarge) {
  Rng rng{9};
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 2000; ++i) a.push_back(rng.normal(0, 1));
  for (int i = 0; i < 2000; ++i) b.push_back(rng.normal(2, 1));
  EXPECT_GT(ks_statistic(Ecdf{a}, Ecdf{b}), 0.5);
}

}  // namespace
}  // namespace bblab::stats
