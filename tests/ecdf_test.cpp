#include "stats/ecdf.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/error.h"
#include "core/rng.h"

namespace bblab::stats {
namespace {

TEST(Ecdf, EvaluatesStepFunction) {
  const Ecdf e{std::vector<double>{1, 2, 3, 4}};
  EXPECT_DOUBLE_EQ(e(0.5), 0.0);
  EXPECT_DOUBLE_EQ(e(1.0), 0.25);
  EXPECT_DOUBLE_EQ(e(2.5), 0.5);
  EXPECT_DOUBLE_EQ(e(4.0), 1.0);
  EXPECT_DOUBLE_EQ(e(100.0), 1.0);
}

TEST(Ecdf, EmptyBehaves) {
  const Ecdf e;
  EXPECT_TRUE(e.empty());
  EXPECT_DOUBLE_EQ(e(1.0), 0.0);
  EXPECT_THROW(e.min(), InvalidArgument);
}

TEST(Ecdf, InverseMatchesQuantiles) {
  const Ecdf e{std::vector<double>{10, 20, 30, 40, 50}};
  EXPECT_DOUBLE_EQ(e.inverse(0.0), 10.0);
  EXPECT_DOUBLE_EQ(e.inverse(0.5), 30.0);
  EXPECT_DOUBLE_EQ(e.inverse(1.0), 50.0);
}

TEST(Ecdf, PointsAreMonotone) {
  Rng rng{3};
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(rng.normal(0, 1));
  const Ecdf e{xs};
  const auto pts = e.points();
  ASSERT_EQ(pts.size(), xs.size());
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GE(pts[i].x, pts[i - 1].x);
    EXPECT_GT(pts[i].f, pts[i - 1].f);
  }
  EXPECT_DOUBLE_EQ(pts.back().f, 1.0);
}

TEST(Ecdf, SampledHasRequestedResolution) {
  Rng rng{5};
  std::vector<double> xs;
  for (int i = 0; i < 100; ++i) xs.push_back(rng.uniform());
  const Ecdf e{xs};
  const auto pts = e.sampled(11);
  ASSERT_EQ(pts.size(), 11u);
  EXPECT_DOUBLE_EQ(pts.front().f, 0.0);
  EXPECT_DOUBLE_EQ(pts.back().f, 1.0);
  EXPECT_THROW(e.sampled(1), InvalidArgument);
}

TEST(Ecdf, SummaryMentionsMedian) {
  const Ecdf e{std::vector<double>{1, 2, 3}};
  EXPECT_NE(e.summary().find("p50=2"), std::string::npos);
  EXPECT_EQ(Ecdf{}.summary(), "(empty)");
}

TEST(KsStatistic, IdenticalSamplesAreZero) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(ks_statistic(Ecdf{xs}, Ecdf{xs}), 0.0);
}

TEST(KsStatistic, DisjointSamplesAreOne) {
  EXPECT_DOUBLE_EQ(
      ks_statistic(Ecdf{std::vector<double>{1, 2}}, Ecdf{std::vector<double>{10, 11}}),
      1.0);
}

TEST(KsStatistic, SameDistributionIsSmall) {
  Rng rng{7};
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 5000; ++i) a.push_back(rng.normal(0, 1));
  for (int i = 0; i < 5000; ++i) b.push_back(rng.normal(0, 1));
  EXPECT_LT(ks_statistic(Ecdf{a}, Ecdf{b}), 0.05);
}

TEST(KsStatistic, ShiftedDistributionIsLarge) {
  Rng rng{9};
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 2000; ++i) a.push_back(rng.normal(0, 1));
  for (int i = 0; i < 2000; ++i) b.push_back(rng.normal(2, 1));
  EXPECT_GT(ks_statistic(Ecdf{a}, Ecdf{b}), 0.5);
}

}  // namespace
}  // namespace bblab::stats
