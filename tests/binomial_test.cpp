#include "stats/binomial.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/error.h"

namespace bblab::stats {
namespace {

TEST(LogChoose, SmallValuesExact) {
  EXPECT_NEAR(std::exp(log_choose(5, 2)), 10.0, 1e-9);
  EXPECT_NEAR(std::exp(log_choose(10, 0)), 1.0, 1e-9);
  EXPECT_NEAR(std::exp(log_choose(10, 10)), 1.0, 1e-9);
  EXPECT_NEAR(std::exp(log_choose(52, 5)), 2598960.0, 1.0);
  EXPECT_THROW(log_choose(3, 4), InvalidArgument);
}

TEST(BinomialPmf, SumsToOne) {
  for (const double p : {0.1, 0.5, 0.9}) {
    double total = 0.0;
    for (std::uint64_t k = 0; k <= 30; ++k) total += binomial_pmf(k, 30, p);
    EXPECT_NEAR(total, 1.0, 1e-10) << "p=" << p;
  }
}

TEST(BinomialPmf, DegenerateP) {
  EXPECT_DOUBLE_EQ(binomial_pmf(0, 10, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(3, 10, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(10, 10, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(11, 10, 0.5), 0.0);
}

TEST(BinomialPGreater, MatchesHandComputedValues) {
  // Fair coin, 10 flips, >= 8 heads: (45 + 10 + 1)/1024.
  EXPECT_NEAR(binomial_p_greater(8, 10), 56.0 / 1024.0, 1e-12);
  // >= 0 successes is certain.
  EXPECT_DOUBLE_EQ(binomial_p_greater(0, 10), 1.0);
  // All successes: (1/2)^10.
  EXPECT_NEAR(binomial_p_greater(10, 10), std::pow(0.5, 10), 1e-15);
}

TEST(BinomialPLess, ComplementsUpperTail) {
  // P(X <= k) + P(X >= k+1) == 1 exactly.
  for (std::uint64_t k = 0; k < 20; ++k) {
    EXPECT_NEAR(binomial_p_less(k, 20) + binomial_p_greater(k + 1, 20), 1.0, 1e-10);
  }
}

TEST(BinomialPGreater, LargeSampleStaysStable) {
  // 52% of 100k should be extremely significant against p0=0.5...
  const double p = binomial_p_greater(52000, 100000);
  EXPECT_LT(p, 1e-30);
  EXPECT_GT(p, 0.0);
  // ...while 50.1% is not.
  EXPECT_GT(binomial_p_greater(50100, 100000), 0.2);
}

TEST(BinomialPGreater, PaperScaleValues) {
  // Table 1 of the paper: 66.8% of ~1200 pairs gives p ~ 1e-25.
  // Reconstruct the scale: successes/trials that match 66.8% with the
  // reported p-value magnitude.
  const double p = binomial_p_greater(802, 1200);
  EXPECT_LT(p, 1e-20);
}

TEST(BinomialTest, DecisionRuleMatchesPaper) {
  // Conclusive: 60% of 1000 pairs.
  const auto strong = binomial_test(600, 1000);
  EXPECT_TRUE(strong.significant);
  EXPECT_TRUE(strong.practical);
  EXPECT_TRUE(strong.conclusive());

  // Statistically significant but below the 52% practical margin: the
  // paper's guard against large-sample trivia.
  const auto trivial = binomial_test(51000, 100000);
  EXPECT_TRUE(trivial.significant);
  EXPECT_FALSE(trivial.practical);
  EXPECT_FALSE(trivial.conclusive());

  // Small sample at 60%: practical but not significant.
  const auto small = binomial_test(6, 10);
  EXPECT_FALSE(small.significant);
  EXPECT_TRUE(small.practical);
  EXPECT_FALSE(small.conclusive());
}

TEST(BinomialTest, EmptyTrialsAreInconclusive) {
  const auto r = binomial_test(0, 0);
  EXPECT_FALSE(r.significant);
  EXPECT_FALSE(r.practical);
  EXPECT_DOUBLE_EQ(r.p_value, 1.0);
}

TEST(BinomialTest, ValidatesInputs) {
  EXPECT_THROW(binomial_p_greater(5, 3), InvalidArgument);
  EXPECT_THROW(binomial_p_greater(1, 2, 0.0), InvalidArgument);
  EXPECT_THROW(binomial_p_greater(1, 2, 1.0), InvalidArgument);
}

// Property sweep: exact tail sum equals brute-force PMF accumulation.
class BinomialTailProperty
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(BinomialTailProperty, TailMatchesBruteForce) {
  const auto [n, p0] = GetParam();
  for (std::uint64_t k = 0; k <= n; k += std::max<std::uint64_t>(1, n / 7)) {
    double brute = 0.0;
    for (std::uint64_t j = k; j <= n; ++j) brute += binomial_pmf(j, n, p0);
    EXPECT_NEAR(binomial_p_greater(k, n, p0), std::min(1.0, brute), 1e-9)
        << "n=" << n << " k=" << k << " p0=" << p0;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, BinomialTailProperty,
    ::testing::Combine(::testing::Values<std::uint64_t>(1, 7, 50, 333),
                       ::testing::Values(0.1, 0.5, 0.85)));

}  // namespace
}  // namespace bblab::stats
