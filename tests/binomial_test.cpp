#include "stats/binomial.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/error.h"

namespace bblab::stats {
namespace {

TEST(LogChoose, SmallValuesExact) {
  EXPECT_NEAR(std::exp(log_choose(5, 2)), 10.0, 1e-9);
  EXPECT_NEAR(std::exp(log_choose(10, 0)), 1.0, 1e-9);
  EXPECT_NEAR(std::exp(log_choose(10, 10)), 1.0, 1e-9);
  EXPECT_NEAR(std::exp(log_choose(52, 5)), 2598960.0, 1.0);
  EXPECT_THROW(log_choose(3, 4), InvalidArgument);
}

TEST(BinomialPmf, SumsToOne) {
  for (const double p : {0.1, 0.5, 0.9}) {
    double total = 0.0;
    for (std::uint64_t k = 0; k <= 30; ++k) total += binomial_pmf(k, 30, p);
    EXPECT_NEAR(total, 1.0, 1e-10) << "p=" << p;
  }
}

TEST(BinomialPmf, DegenerateP) {
  EXPECT_DOUBLE_EQ(binomial_pmf(0, 10, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(3, 10, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(10, 10, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(11, 10, 0.5), 0.0);
}

TEST(BinomialPGreater, MatchesHandComputedValues) {
  // Fair coin, 10 flips, >= 8 heads: (45 + 10 + 1)/1024.
  EXPECT_NEAR(binomial_p_greater(8, 10), 56.0 / 1024.0, 1e-12);
  // >= 0 successes is certain.
  EXPECT_DOUBLE_EQ(binomial_p_greater(0, 10), 1.0);
  // All successes: (1/2)^10.
  EXPECT_NEAR(binomial_p_greater(10, 10), std::pow(0.5, 10), 1e-15);
}

TEST(BinomialPLess, ComplementsUpperTail) {
  // P(X <= k) + P(X >= k+1) == 1 exactly.
  for (std::uint64_t k = 0; k < 20; ++k) {
    EXPECT_NEAR(binomial_p_less(k, 20) + binomial_p_greater(k + 1, 20), 1.0, 1e-10);
  }
}

TEST(BinomialPGreater, LargeSampleStaysStable) {
  // 52% of 100k should be extremely significant against p0=0.5...
  const double p = binomial_p_greater(52000, 100000);
  EXPECT_LT(p, 1e-30);
  EXPECT_GT(p, 0.0);
  // ...while 50.1% is not.
  EXPECT_GT(binomial_p_greater(50100, 100000), 0.2);
}

TEST(BinomialPGreater, PaperScaleValues) {
  // Table 1 of the paper: 66.8% of ~1200 pairs gives p ~ 1e-25.
  // Reconstruct the scale: successes/trials that match 66.8% with the
  // reported p-value magnitude.
  const double p = binomial_p_greater(802, 1200);
  EXPECT_LT(p, 1e-20);
}

TEST(BinomialTest, DecisionRuleMatchesPaper) {
  // Conclusive: 60% of 1000 pairs.
  const auto strong = binomial_test(600, 1000);
  EXPECT_TRUE(strong.significant);
  EXPECT_TRUE(strong.practical);
  EXPECT_TRUE(strong.conclusive());

  // Statistically significant but below the 52% practical margin: the
  // paper's guard against large-sample trivia.
  const auto trivial = binomial_test(51000, 100000);
  EXPECT_TRUE(trivial.significant);
  EXPECT_FALSE(trivial.practical);
  EXPECT_FALSE(trivial.conclusive());

  // Small sample at 60%: practical but not significant.
  const auto small = binomial_test(6, 10);
  EXPECT_FALSE(small.significant);
  EXPECT_TRUE(small.practical);
  EXPECT_FALSE(small.conclusive());
}

TEST(BinomialTest, EmptyTrialsAreInconclusive) {
  const auto r = binomial_test(0, 0);
  EXPECT_FALSE(r.significant);
  EXPECT_FALSE(r.practical);
  EXPECT_DOUBLE_EQ(r.p_value, 1.0);
}

TEST(BinomialTest, ValidatesInputs) {
  EXPECT_THROW(binomial_p_greater(5, 3), InvalidArgument);
  EXPECT_THROW(binomial_p_greater(1, 2, 0.0), InvalidArgument);
  EXPECT_THROW(binomial_p_greater(1, 2, 1.0), InvalidArgument);
}

// High-precision references for the million-trial regression below: sum
// per-term long-double PMFs smallest-first so no precision is lost to a
// large running total.
long double ref_log_pmf(std::uint64_t k, std::uint64_t n, long double p) {
  const auto kl = static_cast<long double>(k);
  const auto nl = static_cast<long double>(n);
  return std::lgamma(nl + 1.0L) - std::lgamma(kl + 1.0L) -
         std::lgamma(nl - kl + 1.0L) + kl * std::log(p) +
         (nl - kl) * std::log1p(-p);
}

long double ref_p_greater(std::uint64_t k, std::uint64_t n, long double p) {
  long double total = 0.0L;
  for (std::uint64_t j = n;; --j) {  // upper tail: smallest terms at j = n
    total += std::exp(ref_log_pmf(j, n, p));
    if (j == k) break;
  }
  return total;
}

long double ref_p_less(std::uint64_t k, std::uint64_t n, long double p) {
  long double total = 0.0L;
  for (std::uint64_t j = 0; j <= k; ++j) {  // lower tail: smallest at j = 0
    total += std::exp(ref_log_pmf(j, n, p));
  }
  return total;
}

TEST(BinomialTail, MillionTrialUpperTailMatchesReference) {
  // Regression: the tail used to be accumulated by ascending-k recurrence
  // regardless of which side of the mode it lay on, so big-to-small
  // addition (and an underflowed starting term) corrupted upper tails at
  // paper scale (n ~ 10^6 FCC samples).
  const std::uint64_t n = 1000000;
  for (const std::uint64_t k : {500500ull, 501500ull, 505000ull}) {
    const long double ref = ref_p_greater(k, n, 0.5L);
    const double got = binomial_p_greater(k, n);
    EXPECT_NEAR(got, static_cast<double>(ref),
                static_cast<double>(ref) * 1e-9)
        << "k=" << k;
  }
}

TEST(BinomialTail, MillionTrialLowerTailIsNonzero) {
  // Companion latent bug: the ascending sum started at pmf(0), which
  // underflows to zero for n = 10^6, zeroing the whole lower tail.
  const std::uint64_t n = 1000000;
  for (const std::uint64_t k : {499000ull, 498500ull}) {
    const long double ref = ref_p_less(k, n, 0.5L);
    const double got = binomial_p_less(k, n);
    EXPECT_GT(got, 0.0) << "k=" << k;
    EXPECT_NEAR(got, static_cast<double>(ref),
                static_cast<double>(ref) * 1e-9)
        << "k=" << k;
  }
}

TEST(BinomialTail, SkewedPSplitsAroundTheMode) {
  // p far from 0.5 exercises both recurrence directions around the mode.
  for (const double p0 : {0.02, 0.97}) {
    const std::uint64_t n = 5000;
    const auto mode = static_cast<std::uint64_t>((n + 1) * p0);
    for (const std::uint64_t k :
         {std::uint64_t{0}, mode / 2 + 1, mode,
          std::min(n, mode + mode / 2 + 1)}) {
      const long double ref = ref_p_greater(k, n, p0);
      EXPECT_NEAR(binomial_p_greater(k, n, p0), static_cast<double>(ref),
                  static_cast<double>(ref) * 1e-9)
          << "p0=" << p0 << " k=" << k;
    }
  }
}

// Property sweep: exact tail sum equals brute-force PMF accumulation.
class BinomialTailProperty
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(BinomialTailProperty, TailMatchesBruteForce) {
  const auto [n, p0] = GetParam();
  for (std::uint64_t k = 0; k <= n; k += std::max<std::uint64_t>(1, n / 7)) {
    double brute = 0.0;
    for (std::uint64_t j = k; j <= n; ++j) brute += binomial_pmf(j, n, p0);
    EXPECT_NEAR(binomial_p_greater(k, n, p0), std::min(1.0, brute), 1e-9)
        << "n=" << n << " k=" << k << " p0=" << p0;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, BinomialTailProperty,
    ::testing::Combine(::testing::Values<std::uint64_t>(1, 7, 50, 333),
                       ::testing::Values(0.1, 0.5, 0.85)));

TEST(BinomialBatch, MatchesScalarTails) {
  // The batch kernel shares tail segments between sorted queries; it
  // agrees with the scalar path up to summation regrouping, so compare
  // with a tight relative tolerance rather than bitwise.
  const std::uint64_t n = 100000;
  // Deliberately unsorted + duplicated query order.
  std::vector<std::uint64_t> shuffled{50200, 0, 99999, 50001, 50001, 1,
                                      60000, 49000, 50000, 100000, 51000};
  for (const double p0 : {0.3, 0.5}) {
    const auto batch = binomial_p_greater_batch(shuffled, n, p0);
    ASSERT_EQ(batch.size(), shuffled.size());
    for (std::size_t i = 0; i < shuffled.size(); ++i) {
      const double scalar = binomial_p_greater(shuffled[i], n, p0);
      EXPECT_NEAR(batch[i], scalar, std::max(1e-300, scalar * 1e-9))
          << "k=" << shuffled[i] << " p0=" << p0;
    }
  }
}

TEST(BinomialBatch, EdgeCases) {
  EXPECT_TRUE(binomial_p_greater_batch({}, 100).empty());
  const std::vector<std::uint64_t> ks{0, 0};
  const auto zero_trials = binomial_p_greater_batch(ks, 0);
  EXPECT_DOUBLE_EQ(zero_trials[0], 1.0);
  EXPECT_DOUBLE_EQ(zero_trials[1], 1.0);
  const std::vector<std::uint64_t> bad{5};
  EXPECT_THROW((void)binomial_p_greater_batch(bad, 4), InvalidArgument);
}

}  // namespace
}  // namespace bblab::stats
