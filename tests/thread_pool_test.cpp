#include "core/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "core/error.h"
#include "core/logging.h"
#include "core/rng.h"

namespace bblab::core {
namespace {

TEST(ThreadPool, SpawnsRequestedWorkers) {
  ThreadPool pool{3};
  EXPECT_EQ(pool.size(), 3u);
  EXPECT_GE(ThreadPool::hardware_threads(), 1u);
  ThreadPool defaulted;
  EXPECT_EQ(defaulted.size(), ThreadPool::hardware_threads());
}

TEST(ThreadPool, SubmittedTasksAllRun) {
  ThreadPool pool{4};
  std::atomic<int> count{0};
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&] {
      count.fetch_add(1);
      done.fetch_add(1);
    });
  }
  while (done.load() < 100) std::this_thread::yield();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, TasksSubmittedBeforeShutdownAllRun) {
  std::atomic<int> count{0};
  ThreadPool pool{2};
  for (int i = 0; i < 64; ++i) {
    pool.submit([&] { count.fetch_add(1); });
  }
  // shutdown() drains: workers only exit once every queue is empty.
  pool.shutdown();
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, SubmitAfterShutdownThrows) {
  // Regression: a task submitted after stop used to be silently parked in
  // a queue no worker would ever drain — it must be rejected loudly.
  ThreadPool pool{2};
  pool.shutdown();
  EXPECT_THROW(pool.submit([] {}), InvalidArgument);
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_FALSE(pool.run_one());
  pool.shutdown();  // idempotent
}

TEST(ThreadPool, RunOneDrainsFromExternalThread) {
  // A pool whose workers are all busy can still make progress on the
  // caller's thread — the primitive parallel_for's help-drain loop uses.
  ThreadPool pool{1};
  std::atomic<bool> picked{false};
  std::atomic<bool> release{false};
  std::atomic<int> ran{0};
  pool.submit([&] {
    picked.store(true);
    while (!release.load()) std::this_thread::yield();
  });
  // Wait until the single worker holds the blocker, then queue work that
  // only run_one() on this thread can reach for now.
  while (!picked.load()) std::this_thread::yield();
  for (int i = 0; i < 4; ++i) {
    pool.submit([&] { ran.fetch_add(1); });
  }
  while (pool.run_one()) {
  }
  EXPECT_EQ(ran.load(), 4);
  release.store(true);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (const std::size_t threads : {1u, 2u, 5u}) {
    ThreadPool pool{threads};
    std::vector<int> hits(1000, 0);
    parallel_for(pool, hits.size(), [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) ++hits[i];
    });
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 1000)
        << threads << " threads";
    for (const int h : hits) EXPECT_EQ(h, 1);
  }
}

TEST(ParallelFor, HandlesEmptyAndTinyRanges) {
  ThreadPool pool{4};
  int calls = 0;
  parallel_for(pool, 0, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::vector<int> hits(2, 0);
  parallel_for(pool, 2, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) ++hits[i];
  });
  EXPECT_EQ(hits[0], 1);
  EXPECT_EQ(hits[1], 1);
}

TEST(ParallelFor, ResultsIndependentOfThreadCount) {
  // Each slot derives from its own RNG substream; any pool size must
  // produce the same vector.
  const Rng base{1234};
  const auto run = [&](std::size_t threads) {
    ThreadPool pool{threads};
    std::vector<double> out(257, 0.0);
    parallel_for(pool, out.size(), [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        Rng rng = base.fork(i);
        out[i] = rng.normal() + rng.exponential(2.0);
      }
    });
    return out;
  };
  const auto one = run(1);
  const auto four = run(4);
  const auto eight = run(8);
  ASSERT_EQ(one.size(), four.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(one[i], four[i]) << i;
    EXPECT_EQ(one[i], eight[i]) << i;
  }
}

TEST(ParallelFor, NestedParallelForDoesNotDeadlock) {
  // Regression: with the old single-queue pool, an outer parallel_for
  // occupying every worker would block inside each block's inner
  // parallel_for, with the inner blocks queued behind the very tasks
  // waiting on them. Help-draining makes the waiters run them instead.
  for (const std::size_t threads : {1u, 2u, 4u}) {
    ThreadPool pool{threads};
    std::atomic<std::size_t> inner_indices{0};
    parallel_for(pool, 8, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        parallel_for(pool, 32, [&](std::size_t ib, std::size_t ie) {
          inner_indices.fetch_add(ie - ib);
        });
      }
    });
    EXPECT_EQ(inner_indices.load(), 8u * 32u) << threads << " threads";
  }
}

TEST(ParallelFor, SkewedCostsCoverEveryIndexOnce) {
  // Adversarial per-index costs (one index ~1000x the rest) exercise the
  // steal path: the worker stuck on the heavy block loses the rest of
  // its deque to its peers. Coverage and results must be unaffected.
  ThreadPool pool{4};
  std::vector<int> hits(512, 0);
  std::atomic<std::uint64_t> sink{0};
  parallel_for(pool, hits.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const std::size_t spins = i == 0 ? 200000 : 200;
      std::uint64_t acc = 0;
      for (std::size_t s = 0; s < spins; ++s) acc += s * 2654435761u;
      sink.fetch_add(acc);
      ++hits[i];
    }
  });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelFor, PropagatesFirstException) {
  ThreadPool pool{4};
  EXPECT_THROW(
      parallel_for(pool, 100,
                   [&](std::size_t begin, std::size_t) {
                     if (begin > 0) throw InvalidArgument{"boom"};
                   }),
      InvalidArgument);
  // The pool stays usable after an exception.
  std::vector<int> hits(8, 0);
  parallel_for(pool, hits.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) ++hits[i];
  });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 8);
}

TEST(ParallelFor, LogsSuppressedExceptionCountBeforeRethrow) {
  // Every block throws; only the first exception propagates, but the
  // discarded ones must be counted and logged, not dropped silently.
  ThreadPool pool{4};
  const LogLevel previous = log_level();
  set_log_level(LogLevel::kWarn);
  testing::internal::CaptureStderr();
  EXPECT_THROW(parallel_for(pool, 1000,
                            [](std::size_t, std::size_t) {
                              throw InvalidArgument{"boom"};
                            }),
               InvalidArgument);
  const std::string err = testing::internal::GetCapturedStderr();
  set_log_level(previous);
  EXPECT_NE(err.find("suppressed"), std::string::npos) << err;
  EXPECT_NE(err.find("parallel_for"), std::string::npos) << err;
}

TEST(ParallelFor, SingleExceptionLogsNothing) {
  ThreadPool pool{4};
  const LogLevel previous = log_level();
  set_log_level(LogLevel::kWarn);
  testing::internal::CaptureStderr();
  EXPECT_THROW(parallel_for(pool, 1000,
                            [](std::size_t begin, std::size_t) {
                              if (begin == 0) throw InvalidArgument{"boom"};
                            }),
               InvalidArgument);
  const std::string err = testing::internal::GetCapturedStderr();
  set_log_level(previous);
  EXPECT_EQ(err.find("suppressed"), std::string::npos) << err;
}

}  // namespace
}  // namespace bblab::core
