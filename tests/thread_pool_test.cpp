#include "core/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "core/error.h"
#include "core/logging.h"
#include "core/rng.h"

namespace bblab::core {
namespace {

TEST(ThreadPool, SpawnsRequestedWorkers) {
  ThreadPool pool{3};
  EXPECT_EQ(pool.size(), 3u);
  EXPECT_GE(ThreadPool::hardware_threads(), 1u);
  ThreadPool defaulted;
  EXPECT_EQ(defaulted.size(), ThreadPool::hardware_threads());
}

TEST(ThreadPool, SubmittedTasksAllRun) {
  ThreadPool pool{4};
  std::atomic<int> count{0};
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&] {
      count.fetch_add(1);
      done.fetch_add(1);
    });
  }
  while (done.load() < 100) std::this_thread::yield();
  EXPECT_EQ(count.load(), 100);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (const std::size_t threads : {1u, 2u, 5u}) {
    ThreadPool pool{threads};
    std::vector<int> hits(1000, 0);
    parallel_for(pool, hits.size(), [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) ++hits[i];
    });
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 1000)
        << threads << " threads";
    for (const int h : hits) EXPECT_EQ(h, 1);
  }
}

TEST(ParallelFor, HandlesEmptyAndTinyRanges) {
  ThreadPool pool{4};
  int calls = 0;
  parallel_for(pool, 0, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::vector<int> hits(2, 0);
  parallel_for(pool, 2, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) ++hits[i];
  });
  EXPECT_EQ(hits[0], 1);
  EXPECT_EQ(hits[1], 1);
}

TEST(ParallelFor, ResultsIndependentOfThreadCount) {
  // Each slot derives from its own RNG substream; any pool size must
  // produce the same vector.
  const Rng base{1234};
  const auto run = [&](std::size_t threads) {
    ThreadPool pool{threads};
    std::vector<double> out(257, 0.0);
    parallel_for(pool, out.size(), [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        Rng rng = base.fork(i);
        out[i] = rng.normal() + rng.exponential(2.0);
      }
    });
    return out;
  };
  const auto one = run(1);
  const auto four = run(4);
  const auto eight = run(8);
  ASSERT_EQ(one.size(), four.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(one[i], four[i]) << i;
    EXPECT_EQ(one[i], eight[i]) << i;
  }
}

TEST(ParallelFor, PropagatesFirstException) {
  ThreadPool pool{4};
  EXPECT_THROW(
      parallel_for(pool, 100,
                   [&](std::size_t begin, std::size_t) {
                     if (begin > 0) throw InvalidArgument{"boom"};
                   }),
      InvalidArgument);
  // The pool stays usable after an exception.
  std::vector<int> hits(8, 0);
  parallel_for(pool, hits.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) ++hits[i];
  });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 8);
}

TEST(ParallelFor, LogsSuppressedExceptionCountBeforeRethrow) {
  // Every block throws; only the first exception propagates, but the
  // discarded ones must be counted and logged, not dropped silently.
  ThreadPool pool{4};
  const LogLevel previous = log_level();
  set_log_level(LogLevel::kWarn);
  testing::internal::CaptureStderr();
  EXPECT_THROW(parallel_for(pool, 1000,
                            [](std::size_t, std::size_t) {
                              throw InvalidArgument{"boom"};
                            }),
               InvalidArgument);
  const std::string err = testing::internal::GetCapturedStderr();
  set_log_level(previous);
  EXPECT_NE(err.find("suppressed"), std::string::npos) << err;
  EXPECT_NE(err.find("parallel_for"), std::string::npos) << err;
}

TEST(ParallelFor, SingleExceptionLogsNothing) {
  ThreadPool pool{4};
  const LogLevel previous = log_level();
  set_log_level(LogLevel::kWarn);
  testing::internal::CaptureStderr();
  EXPECT_THROW(parallel_for(pool, 1000,
                            [](std::size_t begin, std::size_t) {
                              if (begin == 0) throw InvalidArgument{"boom"};
                            }),
               InvalidArgument);
  const std::string err = testing::internal::GetCapturedStderr();
  set_log_level(previous);
  EXPECT_EQ(err.find("suppressed"), std::string::npos) << err;
}

}  // namespace
}  // namespace bblab::core
