#include "behavior/archetype.h"

#include <gtest/gtest.h>

#include <map>

namespace bblab::behavior {
namespace {

TEST(Archetype, TraitsAreOrdered) {
  EXPECT_LT(traits_of(Archetype::kLight).base_intensity,
            traits_of(Archetype::kBrowser).base_intensity);
  EXPECT_GT(traits_of(Archetype::kPowerUser).base_intensity,
            traits_of(Archetype::kBrowser).base_intensity);
  EXPECT_GT(traits_of(Archetype::kBtHeavy).bt_sessions_per_day,
            traits_of(Archetype::kBrowser).bt_sessions_per_day);
  EXPECT_EQ(traits_of(Archetype::kLight).bt_sessions_per_day, 0.0);
  EXPECT_GT(traits_of(Archetype::kStreamer).video_top_mbps,
            traits_of(Archetype::kLight).video_top_mbps);
}

TEST(Archetype, LabelsAreDistinct) {
  std::map<std::string, int> seen;
  for (const auto a : all_archetypes()) ++seen[archetype_label(a)];
  EXPECT_EQ(seen.size(), all_archetypes().size());
}

TEST(ArchetypeMix, SampleFollowsWeights) {
  const ArchetypeMix mix = ArchetypeMix::dasu();
  Rng rng{3};
  std::map<Archetype, int> counts;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) ++counts[mix.sample(rng)];
  EXPECT_NEAR(counts[Archetype::kBtHeavy] / static_cast<double>(kN), 0.20, 0.01);
  EXPECT_NEAR(counts[Archetype::kBrowser] / static_cast<double>(kN), 0.28, 0.01);
}

TEST(ArchetypeMix, DasuSkewsTowardBitTorrent) {
  // The Dasu population reaches users through a BitTorrent extension; the
  // FCC panel does not.
  EXPECT_GT(ArchetypeMix::dasu().bt_heavy, 3.0 * ArchetypeMix::fcc().bt_heavy);
}

}  // namespace
}  // namespace bblab::behavior
