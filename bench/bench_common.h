// Shared setup for the reproduction harness binaries.
//
// Every bench regenerates the same deterministic study dataset (seed
// 2014) and prints its figure/table next to the paper's reported values.
// Scale can be adjusted without recompiling:
//   BBLAB_SCALE=0.5  population scale (default 0.25 ~ 3000 Dasu users)
//   BBLAB_DAYS=2     observation window days (default 1.5)
//   BBLAB_THREADS=4  simulation worker threads (default 0 = all cores);
//                    the dataset is identical for every value
#pragma once

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/logging.h"
#include "dataset/csv.h"
#include "dataset/generator.h"

namespace bblab::bench {

inline double env_or(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atof(v) : fallback;
}

inline dataset::StudyConfig bench_config() {
  dataset::StudyConfig config;
  config.seed = 2014;
  config.threads = static_cast<std::size_t>(env_or("BBLAB_THREADS", 0.0));
  config.population_scale = env_or("BBLAB_SCALE", 0.25);
  config.window_days = env_or("BBLAB_DAYS", 1.5);
  config.fcc_users = 900;
  config.fcc_window_days = 3.0;
  config.first_year = 2011;
  config.last_year = 2013;
  config.upgrade_follow_share = 0.35;
  return config;
}

/// Load a cached dataset if one exists for this configuration; otherwise
/// generate and cache it. The records and upgrade pairs round-trip through
/// the CSV layer; market snapshots are rebuilt deterministically from the
/// seed. Cache location: $BBLAB_CACHE_DIR or /tmp/bblab_bench_cache.
/// Delete the directory (or set BBLAB_NO_CACHE=1) to force regeneration.
inline dataset::StudyDataset load_or_generate(const dataset::StudyConfig& config) {
  namespace fs = std::filesystem;
  const char* no_cache = std::getenv("BBLAB_NO_CACHE");
  const char* cache_root = std::getenv("BBLAB_CACHE_DIR");
  char key[128];
  std::snprintf(key, sizeof key, "s%llu_p%.4f_w%.2f_f%zu_y%d-%d_u%.2f",
                static_cast<unsigned long long>(config.seed),
                config.population_scale, config.window_days, config.fcc_users,
                config.first_year, config.last_year, config.upgrade_follow_share);
  const fs::path dir =
      fs::path{cache_root != nullptr ? cache_root : "/tmp/bblab_bench_cache"} / key;

  const auto slurp = [](const fs::path& p) {
    std::ifstream in{p};
    return std::string{std::istreambuf_iterator<char>{in},
                       std::istreambuf_iterator<char>{}};
  };

  if (no_cache == nullptr && fs::exists(dir / "dasu.csv")) {
    try {
      std::cerr << "[bench] loading cached dataset from " << dir << "\n";
      dataset::StudyDataset ds;
      ds.config = config;
      ds.dasu = dataset::read_user_records(slurp(dir / "dasu.csv"));
      ds.fcc = dataset::read_user_records(slurp(dir / "fcc.csv"));
      ds.upgrades = dataset::read_upgrades(slurp(dir / "upgrades.csv"));
      Rng root{config.seed};
      ds.markets =
          dataset::StudyGenerator{market::World::builtin(), config}.build_markets(root);
      return ds;
    } catch (const std::exception& e) {
      // Stale schema (the cache predates a format change): regenerate.
      std::cerr << "[bench] cache unusable (" << e.what() << "), regenerating\n";
    }
  }

  std::cerr << "[bench] generating dataset (scale=" << config.population_scale
            << ", window=" << config.window_days << "d, seed=" << config.seed
            << ")...\n";
  auto ds = dataset::StudyGenerator{market::World::builtin(), config}.generate();
  if (no_cache == nullptr) {
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (!ec) {
      std::ofstream{dir / "dasu.csv.tmp"} << [&] {
        std::ostringstream os;
        dataset::write_user_records(os, ds.dasu);
        return os.str();
      }();
      std::ofstream{dir / "fcc.csv.tmp"} << [&] {
        std::ostringstream os;
        dataset::write_user_records(os, ds.fcc);
        return os.str();
      }();
      std::ofstream{dir / "upgrades.csv.tmp"} << [&] {
        std::ostringstream os;
        dataset::write_upgrades(os, ds.upgrades);
        return os.str();
      }();
      // Publish atomically so concurrent benches never read half a cache.
      fs::rename(dir / "dasu.csv.tmp", dir / "dasu.csv", ec);
      fs::rename(dir / "fcc.csv.tmp", dir / "fcc.csv", ec);
      fs::rename(dir / "upgrades.csv.tmp", dir / "upgrades.csv", ec);
    }
  }
  return ds;
}

inline const dataset::StudyDataset& bench_dataset() {
  static const dataset::StudyDataset ds = [] {
    set_log_level(LogLevel::kInfo);
    auto d = load_or_generate(bench_config());
    std::cerr << "[bench] " << d.dasu.size() << " dasu users, " << d.fcc.size()
              << " fcc users, " << d.upgrades.size() << " upgrade pairs\n";
    return d;
  }();
  return ds;
}

}  // namespace bblab::bench
