// Figure 5 — average change in demand when switching to a faster
// connection, grouped by initial and target service tier.
//
// Paper reference points (§3.2):
//   demand clearly increases when upgrading from slower tiers, especially
//   for peak usage; gains become inconsistent above ~16 Mbps, where wide
//   confidence intervals show upgrades often have no significant impact.
#include <array>
#include <cstdio>
#include <iostream>

#include "analysis/figures.h"
#include "analysis/report.h"
#include "bench_common.h"

namespace {

void print_panel(std::ostream& out, const std::string& name,
                 const std::vector<bblab::analysis::Fig5Cell>& cells,
                 const std::vector<double>& edges) {
  out << "  " << name << "\n";
  std::array<char, 160> buf{};
  for (const auto& c : cells) {
    std::snprintf(buf.data(), buf.size(),
                  "    %6.3g-%-6.3g -> %6.3g-%-6.3g Mbps: %+9.4f Mbps ± %-8.4f (n=%zu)\n",
                  edges[c.from_tier], edges[c.from_tier + 1], edges[c.to_tier],
                  edges[c.to_tier + 1], c.change_mbps.mean, c.change_mbps.half_width,
                  c.users);
    out << buf.data();
  }
}

}  // namespace

int main() {
  using namespace bblab;
  const auto& ds = bench::bench_dataset();
  const auto fig = analysis::fig5_upgrade_deltas(ds);
  auto& out = std::cout;

  analysis::print_banner(out, "Figure 5 — demand change by upgrade tier");
  print_panel(out, "(a) mean, w/ BT", fig.mean_bt, fig.tier_edges);
  print_panel(out, "(b) p95, w/ BT", fig.peak_bt, fig.tier_edges);
  print_panel(out, "(c) mean, no BT", fig.mean_nobt, fig.tier_edges);
  print_panel(out, "(d) p95, no BT", fig.peak_nobt, fig.tier_edges);

  // Aggregate low-tier vs high-tier peak gains.
  double low = 0.0;
  double high = 0.0;
  std::size_t low_n = 0;
  std::size_t high_n = 0;
  for (const auto& c : fig.peak_nobt) {
    if (c.from_tier <= 1) {
      low += c.change_mbps.mean * static_cast<double>(c.users);
      low_n += c.users;
    } else if (c.from_tier >= 3) {
      high += c.change_mbps.mean * static_cast<double>(c.users);
      high_n += c.users;
    }
  }
  analysis::print_compare(
      out, "peak-demand gain: upgrades from <4 Mbps vs from >16 Mbps",
      "clear increase at low tiers; inconsistent above 16 Mbps",
      (low_n > 0 ? analysis::num(low / static_cast<double>(low_n)) : "n/a") +
          " Mbps vs " +
          (high_n > 0 ? analysis::num(high / static_cast<double>(high_n)) : "n/a") +
          " Mbps");
  return 0;
}
