// Performance microbenchmarks for the pipeline's hot components:
// water-filling, the fluid simulator, caliper matching, the exact
// binomial test, and plan-catalog generation.
#include <benchmark/benchmark.h>

#include "causal/matching.h"
#include "core/rng.h"
#include "core/thread_pool.h"
#include "market/catalog.h"
#include "measurement/pipeline.h"
#include "netsim/fluid.h"
#include "netsim/workload.h"
#include "stats/binomial.h"

namespace {

using namespace bblab;

void BM_WaterFill(benchmark::State& state) {
  Rng rng{1};
  std::vector<double> caps(static_cast<std::size_t>(state.range(0)));
  for (auto& c : caps) c = rng.uniform(1e5, 1e8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(netsim::water_fill(5e7, caps));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WaterFill)->Arg(4)->Arg(16)->Arg(64);

void BM_FluidSimulatorUserDay(benchmark::State& state) {
  netsim::AccessLink link;
  link.down = Rate::from_mbps(16);
  link.up = Rate::from_mbps(2);
  link.rtt_ms = 40;
  link.loss = 0.001;
  const SimClock clock{2011};
  const netsim::DiurnalModel diurnal{netsim::DiurnalParams{}, clock};
  const netsim::WorkloadGenerator gen{diurnal};
  netsim::WorkloadParams params;
  params.intensity = 1.0;
  params.bt_sessions_per_day = 1.0;
  Rng rng{7};
  const auto flows = gen.generate(params, link, 0.0, kDay, rng);
  const netsim::FluidLinkSimulator sim{link};
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run(flows, 0.0, 2880, 30.0));
  }
  state.SetItemsProcessed(state.iterations() * 2880);
}
BENCHMARK(BM_FluidSimulatorUserDay);

void BM_WorkloadGeneration(benchmark::State& state) {
  netsim::AccessLink link;
  link.down = Rate::from_mbps(16);
  link.up = Rate::from_mbps(2);
  link.rtt_ms = 40;
  link.loss = 0.001;
  const SimClock clock{2011};
  const netsim::DiurnalModel diurnal{netsim::DiurnalParams{}, clock};
  const netsim::WorkloadGenerator gen{diurnal};
  netsim::WorkloadParams params;
  Rng rng{7};
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.generate(params, link, 0.0, kDay, rng));
  }
}
BENCHMARK(BM_WorkloadGeneration);

std::vector<causal::Unit> matching_units(std::size_t n, std::uint64_t salt) {
  Rng rng{salt};
  std::vector<causal::Unit> units(n);
  for (auto& u : units) {
    u.outcome = rng.uniform();
    u.covariates = {rng.lognormal(3, 0.8), rng.lognormal(0, 1),
                    rng.uniform(10, 100)};
  }
  return units;
}

void BM_CaliperMatching(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto treated = matching_units(n, 3);
  const auto control = matching_units(n, 4);
  const causal::CaliperMatcher matcher;
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.match(treated, control));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CaliperMatching)->Arg(100)->Arg(400)->Arg(1600);

void BM_CaliperMatchingPooled(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto treated = matching_units(n, 3);
  const auto control = matching_units(n, 4);
  const causal::CaliperMatcher matcher;
  core::ThreadPool pool{static_cast<std::size_t>(state.range(1))};
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.match(treated, control, &pool));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CaliperMatchingPooled)
    ->Args({1600, 1})
    ->Args({1600, 4})
    ->Args({1600, 8})
    ->UseRealTime();

void BM_ParallelPipeline(benchmark::State& state) {
  const SimClock clock{2011};
  const netsim::DiurnalModel diurnal{netsim::DiurnalParams{}, clock};
  const netsim::WorkloadGenerator workload{diurnal};
  const measurement::DasuCollector dasu{measurement::DasuCollectorParams{},
                                        diurnal};
  const measurement::GatewayCollector gateway{};
  measurement::PipelineToolkit kit;
  kit.workload = &workload;
  kit.dasu = &dasu;
  kit.gateway = &gateway;

  Rng rng{11};
  std::vector<measurement::HouseholdTask> tasks(64);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    auto& t = tasks[i];
    t.link.down = Rate::from_mbps(rng.uniform(2.0, 60.0));
    t.link.up = Rate::from_mbps(rng.uniform(0.5, 6.0));
    t.link.rtt_ms = rng.uniform(15.0, 250.0);
    t.link.loss = rng.uniform(0.0, 0.005);
    t.workload.intensity = rng.uniform(0.5, 1.5);
    t.workload.bt_sessions_per_day = i % 4 == 0 ? 1.0 : 0.0;
    t.bins = 2880;  // one day at 30 s
    t.collector = i % 3 == 0 ? measurement::CollectorKind::kGateway
                             : measurement::CollectorKind::kDasu;
    t.stream_id = i;
  }

  const Rng base{2014};
  core::ThreadPool pool{static_cast<std::size_t>(state.range(0))};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        measurement::parallel_simulate_households(kit, tasks, base, pool));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(tasks.size()));
}
BENCHMARK(BM_ParallelPipeline)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_BinomialTestExact(benchmark::State& state) {
  const auto trials = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        stats::binomial_p_greater(trials * 53 / 100, trials));
  }
}
BENCHMARK(BM_BinomialTestExact)->Arg(100)->Arg(10000)->Arg(1000000);

void BM_CatalogGeneration(benchmark::State& state) {
  const auto world = market::World::builtin();
  Rng rng{5};
  for (auto _ : state) {
    for (const auto& country : world.countries()) {
      benchmark::DoNotOptimize(market::PlanCatalog::generate(country, rng));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(world.size()));
}
BENCHMARK(BM_CatalogGeneration);

}  // namespace

BENCHMARK_MAIN();
