// Performance microbenchmarks for the pipeline's hot components:
// water-filling, the fluid simulator, caliper matching, the exact
// binomial test, and plan-catalog generation.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <limits>

#include "causal/matching.h"
#include "core/rng.h"
#include "core/thread_pool.h"
#include "market/catalog.h"
#include "measurement/pipeline.h"
#include "netsim/fluid.h"
#include "netsim/workload.h"
#include "stats/binomial.h"

namespace {

using namespace bblab;

void BM_WaterFill(benchmark::State& state) {
  Rng rng{1};
  std::vector<double> caps(static_cast<std::size_t>(state.range(0)));
  for (auto& c : caps) c = rng.uniform(1e5, 1e8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(netsim::water_fill(5e7, caps));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WaterFill)->Arg(4)->Arg(16)->Arg(64);

void BM_FluidSimulatorUserDay(benchmark::State& state) {
  netsim::AccessLink link;
  link.down = Rate::from_mbps(16);
  link.up = Rate::from_mbps(2);
  link.rtt_ms = 40;
  link.loss = 0.001;
  const SimClock clock{2011};
  const netsim::DiurnalModel diurnal{netsim::DiurnalParams{}, clock};
  const netsim::WorkloadGenerator gen{diurnal};
  netsim::WorkloadParams params;
  params.intensity = 1.0;
  params.bt_sessions_per_day = 1.0;
  Rng rng{7};
  const auto flows = gen.generate(params, link, 0.0, kDay, rng);
  const netsim::FluidLinkSimulator sim{link};
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run(flows, 0.0, 2880, 30.0));
  }
  state.SetItemsProcessed(state.iterations() * 2880);
}
BENCHMARK(BM_FluidSimulatorUserDay);

void BM_WorkloadGeneration(benchmark::State& state) {
  netsim::AccessLink link;
  link.down = Rate::from_mbps(16);
  link.up = Rate::from_mbps(2);
  link.rtt_ms = 40;
  link.loss = 0.001;
  const SimClock clock{2011};
  const netsim::DiurnalModel diurnal{netsim::DiurnalParams{}, clock};
  const netsim::WorkloadGenerator gen{diurnal};
  netsim::WorkloadParams params;
  Rng rng{7};
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.generate(params, link, 0.0, kDay, rng));
  }
}
BENCHMARK(BM_WorkloadGeneration);

std::vector<causal::Unit> matching_units(std::size_t n, std::uint64_t salt) {
  Rng rng{salt};
  std::vector<causal::Unit> units(n);
  for (auto& u : units) {
    u.outcome = rng.uniform();
    u.covariates = {rng.lognormal(3, 0.8), rng.lognormal(0, 1),
                    rng.uniform(10, 100)};
  }
  return units;
}

void BM_CaliperMatching(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto treated = matching_units(n, 3);
  const auto control = matching_units(n, 4);
  const causal::CaliperMatcher matcher;
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.match(treated, control));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CaliperMatching)->Arg(100)->Arg(400)->Arg(1600);

void BM_CaliperMatchingPooled(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto treated = matching_units(n, 3);
  const auto control = matching_units(n, 4);
  const causal::CaliperMatcher matcher;
  core::ThreadPool pool{static_cast<std::size_t>(state.range(1))};
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.match(treated, control, &pool));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CaliperMatchingPooled)
    ->Args({1600, 1})
    ->Args({1600, 4})
    ->Args({1600, 8})
    ->UseRealTime();

void BM_ParallelPipeline(benchmark::State& state) {
  const SimClock clock{2011};
  const netsim::DiurnalModel diurnal{netsim::DiurnalParams{}, clock};
  const netsim::WorkloadGenerator workload{diurnal};
  const measurement::DasuCollector dasu{measurement::DasuCollectorParams{},
                                        diurnal};
  const measurement::GatewayCollector gateway{};
  measurement::PipelineToolkit kit;
  kit.workload = &workload;
  kit.dasu = &dasu;
  kit.gateway = &gateway;

  Rng rng{11};
  std::vector<measurement::HouseholdTask> tasks(64);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    auto& t = tasks[i];
    t.link.down = Rate::from_mbps(rng.uniform(2.0, 60.0));
    t.link.up = Rate::from_mbps(rng.uniform(0.5, 6.0));
    t.link.rtt_ms = rng.uniform(15.0, 250.0);
    t.link.loss = rng.uniform(0.0, 0.005);
    t.workload.intensity = rng.uniform(0.5, 1.5);
    t.workload.bt_sessions_per_day = i % 4 == 0 ? 1.0 : 0.0;
    t.bins = 2880;  // one day at 30 s
    t.collector = i % 3 == 0 ? measurement::CollectorKind::kGateway
                             : measurement::CollectorKind::kDasu;
    t.stream_id = i;
  }

  const Rng base{2014};
  core::ThreadPool pool{static_cast<std::size_t>(state.range(0))};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        measurement::parallel_simulate_households(kit, tasks, base, pool));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(tasks.size()));
}
BENCHMARK(BM_ParallelPipeline)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

// --- skewed-workload scheduling: work-stealing vs static partition --------
//
// The adversarial case for static contiguous partitioning: a few heavy
// households (prime-time BitTorrent, full-day traces) clustered at the
// front of the task list while the rest are near-idle. A static split
// hands every heavy task to worker 0; the stealing pool over-partitions
// into ~8 blocks per worker and idle workers steal the surplus.
//
// The CI box is single-core, so wall-clock speedup is unmeasurable
// there. Instead each task's serial cost is measured once, and the two
// schedules are simulated over those measured costs: the reported
// counters are deterministic makespans (ms) plus their ratio —
// "virtual_speedup_vs_static" is the acceptance number and is >= 2 at
// 4+ threads. real_time still tracks the live pool run end to end.

std::vector<measurement::HouseholdTask> skewed_tasks() {
  std::vector<measurement::HouseholdTask> tasks(48);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    auto& t = tasks[i];
    const bool heavy = i < 6;  // clustered: worst case for a static split
    t.link.down = Rate::from_mbps(heavy ? 100.0 : 8.0);
    t.link.up = Rate::from_mbps(heavy ? 10.0 : 1.0);
    t.link.rtt_ms = heavy ? 20.0 : 120.0;
    t.link.loss = 0.001;
    t.workload.intensity = heavy ? 3.0 : 0.05;
    t.workload.bt_sessions_per_day = heavy ? 6.0 : 0.0;
    t.bins = heavy ? 2880 : 120;
    t.collector = measurement::CollectorKind::kDasu;
    t.stream_id = 9000 + i;
  }
  return tasks;
}

/// Serial cost of each task in milliseconds, measured once (best of 3).
const std::vector<double>& skewed_task_costs(
    const measurement::PipelineToolkit& kit,
    std::span<const measurement::HouseholdTask> tasks) {
  static const std::vector<double> costs = [&] {
    const Rng base{2014};
    core::ThreadPool serial{1};
    std::vector<double> out(tasks.size());
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      double best = std::numeric_limits<double>::infinity();
      for (int rep = 0; rep < 3; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        benchmark::DoNotOptimize(measurement::parallel_simulate_households(
            kit, tasks.subspan(i, 1), base, serial));
        const auto t1 = std::chrono::steady_clock::now();
        best = std::min(
            best, std::chrono::duration<double, std::milli>{t1 - t0}.count());
      }
      out[i] = best;
    }
    return out;
  }();
  return costs;
}

/// Makespan of a static contiguous partition: ceil(n/workers) tasks per
/// worker, no stealing — the pre-work-stealing schedule.
double static_makespan(std::span<const double> costs, std::size_t workers) {
  const std::size_t n = costs.size();
  const std::size_t chunk = (n + workers - 1) / workers;
  double worst = 0.0;
  for (std::size_t w = 0; w * chunk < n; ++w) {
    double sum = 0.0;
    for (std::size_t i = w * chunk; i < std::min(n, (w + 1) * chunk); ++i) {
      sum += costs[i];
    }
    worst = std::max(worst, sum);
  }
  return worst;
}

/// Makespan of the stealing schedule: the same over-partitioning as
/// core::parallel_for (kBlocksPerWorker = 8), blocks list-scheduled
/// greedily — a free worker always takes the next unclaimed block, which
/// is exactly what deque + steal converges to.
double steal_makespan(std::span<const double> costs, std::size_t workers) {
  const std::size_t n = costs.size();
  const std::size_t blocks = workers == 1 ? 1 : std::min(n, workers * 8);
  const std::size_t chunk = (n + blocks - 1) / blocks;
  std::vector<double> finish(workers, 0.0);
  for (std::size_t b = 0; b * chunk < n; ++b) {
    double sum = 0.0;
    for (std::size_t i = b * chunk; i < std::min(n, (b + 1) * chunk); ++i) {
      sum += costs[i];
    }
    *std::min_element(finish.begin(), finish.end()) += sum;
  }
  return *std::max_element(finish.begin(), finish.end());
}

void BM_SkewedPipelineSchedule(benchmark::State& state) {
  const SimClock clock{2011};
  const netsim::DiurnalModel diurnal{netsim::DiurnalParams{}, clock};
  const netsim::WorkloadGenerator workload{diurnal};
  const measurement::DasuCollector dasu{measurement::DasuCollectorParams{},
                                        diurnal};
  const measurement::GatewayCollector gateway{};
  measurement::PipelineToolkit kit;
  kit.workload = &workload;
  kit.dasu = &dasu;
  kit.gateway = &gateway;

  const auto tasks = skewed_tasks();
  const auto& costs = skewed_task_costs(kit, tasks);
  const auto workers = static_cast<std::size_t>(state.range(0));

  const Rng base{2014};
  core::ThreadPool pool{workers};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        measurement::parallel_simulate_households(kit, tasks, base, pool));
  }
  const double stat = static_makespan(costs, workers);
  const double steal = steal_makespan(costs, workers);
  state.counters["static_makespan_ms"] = stat;
  state.counters["steal_makespan_ms"] = steal;
  state.counters["virtual_speedup_vs_static"] = stat / steal;
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(tasks.size()));
}
BENCHMARK(BM_SkewedPipelineSchedule)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

void BM_BinomialTestExact(benchmark::State& state) {
  const auto trials = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        stats::binomial_p_greater(trials * 53 / 100, trials));
  }
}
BENCHMARK(BM_BinomialTestExact)->Arg(100)->Arg(10000)->Arg(1000000);

void BM_CatalogGeneration(benchmark::State& state) {
  const auto world = market::World::builtin();
  Rng rng{5};
  for (auto _ : state) {
    for (const auto& country : world.countries()) {
      benchmark::DoNotOptimize(market::PlanCatalog::generate(country, rng));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(world.size()));
}
BENCHMARK(BM_CatalogGeneration);

}  // namespace

BENCHMARK_MAIN();
