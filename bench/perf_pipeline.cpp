// Performance microbenchmarks for the pipeline's hot components:
// water-filling, the fluid simulator, caliper matching, the exact
// binomial test, and plan-catalog generation.
#include <benchmark/benchmark.h>

#include "causal/matching.h"
#include "core/rng.h"
#include "market/catalog.h"
#include "netsim/fluid.h"
#include "netsim/workload.h"
#include "stats/binomial.h"

namespace {

using namespace bblab;

void BM_WaterFill(benchmark::State& state) {
  Rng rng{1};
  std::vector<double> caps(static_cast<std::size_t>(state.range(0)));
  for (auto& c : caps) c = rng.uniform(1e5, 1e8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(netsim::water_fill(5e7, caps));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WaterFill)->Arg(4)->Arg(16)->Arg(64);

void BM_FluidSimulatorUserDay(benchmark::State& state) {
  netsim::AccessLink link;
  link.down = Rate::from_mbps(16);
  link.up = Rate::from_mbps(2);
  link.rtt_ms = 40;
  link.loss = 0.001;
  const SimClock clock{2011};
  const netsim::DiurnalModel diurnal{netsim::DiurnalParams{}, clock};
  const netsim::WorkloadGenerator gen{diurnal};
  netsim::WorkloadParams params;
  params.intensity = 1.0;
  params.bt_sessions_per_day = 1.0;
  Rng rng{7};
  const auto flows = gen.generate(params, link, 0.0, kDay, rng);
  const netsim::FluidLinkSimulator sim{link};
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run(flows, 0.0, 2880, 30.0));
  }
  state.SetItemsProcessed(state.iterations() * 2880);
}
BENCHMARK(BM_FluidSimulatorUserDay);

void BM_WorkloadGeneration(benchmark::State& state) {
  netsim::AccessLink link;
  link.down = Rate::from_mbps(16);
  link.up = Rate::from_mbps(2);
  link.rtt_ms = 40;
  link.loss = 0.001;
  const SimClock clock{2011};
  const netsim::DiurnalModel diurnal{netsim::DiurnalParams{}, clock};
  const netsim::WorkloadGenerator gen{diurnal};
  netsim::WorkloadParams params;
  Rng rng{7};
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.generate(params, link, 0.0, kDay, rng));
  }
}
BENCHMARK(BM_WorkloadGeneration);

void BM_CaliperMatching(benchmark::State& state) {
  Rng rng{3};
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<causal::Unit> treated(n);
  std::vector<causal::Unit> control(n);
  for (std::size_t i = 0; i < n; ++i) {
    treated[i].outcome = rng.uniform();
    treated[i].covariates = {rng.lognormal(3, 0.8), rng.lognormal(0, 1),
                             rng.uniform(10, 100)};
    control[i].outcome = rng.uniform();
    control[i].covariates = {rng.lognormal(3, 0.8), rng.lognormal(0, 1),
                             rng.uniform(10, 100)};
  }
  const causal::CaliperMatcher matcher;
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.match(treated, control));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CaliperMatching)->Arg(100)->Arg(400)->Arg(1600);

void BM_BinomialTestExact(benchmark::State& state) {
  const auto trials = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        stats::binomial_p_greater(trials * 53 / 100, trials));
  }
}
BENCHMARK(BM_BinomialTestExact)->Arg(100)->Arg(10000)->Arg(1000000);

void BM_CatalogGeneration(benchmark::State& state) {
  const auto world = market::World::builtin();
  Rng rng{5};
  for (auto _ : state) {
    for (const auto& country : world.countries()) {
      benchmark::DoNotOptimize(market::PlanCatalog::generate(country, rng));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(world.size()));
}
BENCHMARK(BM_CatalogGeneration);

}  // namespace

BENCHMARK_MAIN();
