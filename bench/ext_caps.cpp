// Extension — the usage-cap natural experiment (Chetty et al., CHI'12,
// cited by the paper): do monthly data caps suppress demand on otherwise
// similar connections?
//
// Expectation from the planted behavior (behavior/caps.h): capped users'
// heavy consumption throttles as their appetite approaches the cap, so
// uncapped users should impose higher average demand on matched lines —
// the effect concentrated among heavy-appetite users.
#include <iostream>

#include "analysis/common.h"
#include "analysis/report.h"
#include "bench_common.h"
#include "causal/experiment.h"

int main() {
  using namespace bblab;
  auto& out = std::cout;
  const auto& ds = bench::bench_dataset();
  analysis::print_banner(out, "Extension — usage caps vs demand");

  const auto records = analysis::dasu_records(ds);
  const auto capped = analysis::filter(
      records, [](const dataset::UserRecord& r) { return r.capped(); });
  const auto uncapped = analysis::filter(
      records, [](const dataset::UserRecord& r) { return !r.capped(); });
  out << "  population: " << capped.size() << " capped, " << uncapped.size()
      << " uncapped users\n";

  const auto cov = analysis::covariates_price_experiment();  // cap(acity), rtt, loss, cost
  causal::ExperimentOptions options;
  options.matcher.absolute_slacks = {1e-9, 1e-9, 2e-4, 0.02};
  const causal::NaturalExperiment experiment{options};

  // H: the uncapped (treated) user imposes higher average demand.
  for (const auto& [label, with_bt] :
       {std::pair{"average demand w/ BT", true}, std::pair{"average demand no BT", false}}) {
    const auto outcome = [with_bt = with_bt](const dataset::UserRecord& r) {
      return analysis::mean_down_bps(r, with_bt);
    };
    const auto treated = analysis::make_units(uncapped, outcome, cov);
    const auto control = analysis::make_units(capped, outcome, cov);
    const auto result = experiment.run(label, treated, control);
    analysis::print_experiment(out, result);
  }

  analysis::print_compare(out, "expected direction",
                          "uncapped users use more (Chetty et al.)",
                          "see rows above: H-holds fraction > 50% confirms");
  return 0;
}
