// Microbenchmarks for the SoA stats core: the batched/branchless kernels
// against the scalar paths they replaced. Each pair (radix vs std::sort,
// merge-ECDF vs per-query binary search, batched vs per-call quantiles,
// shared-tail vs scalar binomial) quantifies the kernel's win on the
// column sizes the analysis layer actually sees (figure columns are
// 10^3..10^5 rows locally, 10^6+ at M-Lab scale).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include "core/rng.h"
#include "stats/binomial.h"
#include "stats/column.h"
#include "stats/descriptive.h"
#include "stats/ecdf.h"
#include "stats/quantile.h"

namespace {

using namespace bblab;

std::vector<double> lognormal_column(std::size_t n, double nan_share = 0.0) {
  Rng rng{17};
  std::vector<double> xs(n);
  for (auto& x : xs) {
    x = rng.uniform() < nan_share ? std::nan("") : rng.lognormal(1.0, 1.4);
  }
  return xs;
}

std::vector<std::uint64_t> user_id_column(std::size_t n) {
  // Ids as the generator emits them: clustered per country block with
  // repeats (several yearly records per user).
  Rng rng{23};
  std::vector<std::uint64_t> ids(n);
  for (auto& id : ids) {
    const auto block = static_cast<std::uint64_t>(rng.uniform(0.0, 30.0));
    id = block * 1000000 + static_cast<std::uint64_t>(rng.uniform(0.0, 5000.0));
  }
  return ids;
}

// --- sorting: radix vs std::sort ------------------------------------------

void BM_SortDoubleRadix(benchmark::State& state) {
  const auto xs = lognormal_column(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto copy = xs;
    stats::radix_sort(copy);
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SortDoubleRadix)->Arg(4096)->Arg(65536)->Arg(1 << 20);

void BM_SortDoubleStd(benchmark::State& state) {
  const auto xs = lognormal_column(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto copy = xs;
    std::sort(copy.begin(), copy.end());
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SortDoubleStd)->Arg(4096)->Arg(65536)->Arg(1 << 20);

void BM_SortedFiniteWithNans(benchmark::State& state) {
  // The full column-construction path: branchless NaN compaction + sort.
  const auto xs =
      lognormal_column(static_cast<std::size_t>(state.range(0)), 0.02);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::sorted_finite(xs));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SortedFiniteWithNans)->Arg(65536)->Arg(1 << 20);

// --- user-id merge keys: radix permutation vs comparison sort -------------

void BM_SortPermutationRadix(benchmark::State& state) {
  const auto ids = user_id_column(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::sort_permutation(ids));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SortPermutationRadix)->Arg(4096)->Arg(65536)->Arg(1 << 20);

void BM_SortPermutationStdStable(benchmark::State& state) {
  const auto ids = user_id_column(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    std::vector<std::uint32_t> perm(ids.size());
    std::iota(perm.begin(), perm.end(), 0u);
    std::stable_sort(perm.begin(), perm.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                       return ids[a] < ids[b];
                     });
    benchmark::DoNotOptimize(perm.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SortPermutationStdStable)->Arg(4096)->Arg(65536)->Arg(1 << 20);

void BM_GroupByKey(benchmark::State& state) {
  const auto ids = user_id_column(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::group_by_key(ids));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GroupByKey)->Arg(65536)->Arg(1 << 20);

// --- ECDF evaluation: linear merge vs per-query binary search -------------

void BM_EcdfEvalBatch(benchmark::State& state) {
  const stats::Ecdf ecdf{lognormal_column(262144)};
  const auto m = static_cast<std::size_t>(state.range(0));
  std::vector<double> queries(m);
  for (std::size_t i = 0; i < m; ++i) {
    queries[i] = 0.01 + 40.0 * static_cast<double>(i) / static_cast<double>(m);
  }
  std::vector<double> out(m);
  for (auto _ : state) {
    ecdf.evaluate_sorted(queries, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EcdfEvalBatch)->Arg(64)->Arg(1024)->Arg(16384);

void BM_EcdfEvalScalar(benchmark::State& state) {
  const stats::Ecdf ecdf{lognormal_column(262144)};
  const auto m = static_cast<std::size_t>(state.range(0));
  std::vector<double> queries(m);
  for (std::size_t i = 0; i < m; ++i) {
    queries[i] = 0.01 + 40.0 * static_cast<double>(i) / static_cast<double>(m);
  }
  std::vector<double> out(m);
  for (auto _ : state) {
    for (std::size_t i = 0; i < m; ++i) out[i] = ecdf(queries[i]);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EcdfEvalScalar)->Arg(64)->Arg(1024)->Arg(16384);

// --- quantiles: one sorted column vs re-sort per call ---------------------

void BM_QuantilesBatchSorted(benchmark::State& state) {
  const stats::SortedColumn col{lognormal_column(262144)};
  const std::vector<double> qs{0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99};
  for (auto _ : state) {
    benchmark::DoNotOptimize(col.quantiles(qs));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(qs.size()));
}
BENCHMARK(BM_QuantilesBatchSorted);

void BM_QuantilesResortPerCall(benchmark::State& state) {
  const auto xs = lognormal_column(262144);
  const std::vector<double> qs{0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99};
  std::vector<double> out(qs.size());
  for (auto _ : state) {
    for (std::size_t i = 0; i < qs.size(); ++i) {
      out[i] = stats::quantile(xs, qs[i]);  // copies + sorts every call
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(qs.size()));
}
BENCHMARK(BM_QuantilesResortPerCall);

// --- binomial tails: shared descending accumulation vs per-query ----------

void BM_BinomialBatch(benchmark::State& state) {
  const std::uint64_t trials = 1000000;
  const auto m = static_cast<std::size_t>(state.range(0));
  Rng rng{31};
  std::vector<std::uint64_t> ks(m);
  for (auto& k : ks) {
    k = static_cast<std::uint64_t>(rng.uniform(499000.0, 505000.0));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::binomial_p_greater_batch(ks, trials));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BinomialBatch)->Arg(16)->Arg(256);

void BM_BinomialScalarLoop(benchmark::State& state) {
  const std::uint64_t trials = 1000000;
  const auto m = static_cast<std::size_t>(state.range(0));
  Rng rng{31};
  std::vector<std::uint64_t> ks(m);
  for (auto& k : ks) {
    k = static_cast<std::uint64_t>(rng.uniform(499000.0, 505000.0));
  }
  std::vector<double> out(m);
  for (auto _ : state) {
    for (std::size_t i = 0; i < m; ++i) {
      out[i] = stats::binomial_p_greater(ks[i], trials);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BinomialScalarLoop)->Arg(16)->Arg(256);

// --- running moments: block add vs per-element calls ----------------------

void BM_RunningStatsBlockAdd(benchmark::State& state) {
  const auto xs = lognormal_column(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::accumulate(xs));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RunningStatsBlockAdd)->Arg(65536);

void BM_RunningStatsScalarAdds(benchmark::State& state) {
  const auto xs = lognormal_column(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    stats::RunningStats rs;
    for (const double x : xs) rs.add(x);
    benchmark::DoNotOptimize(rs.mean());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RunningStatsScalarAdds)->Arg(65536);

}  // namespace

BENCHMARK_MAIN();
