// Extension — bufferbloat ablation on the access link.
//
// The paper's era is exactly when bufferbloat was characterized (the FCC
// gateways it uses were also deployed for that work). With the simulator's
// optional queueing model enabled, a saturated downlink inflates every
// flow's RTT, re-throttling TCP-bound traffic. This harness quantifies the
// effect on a BitTorrent-heavy household across service tiers.
#include <array>
#include <cstdio>
#include <iostream>
#include <numeric>

#include "analysis/report.h"
#include "core/rng.h"
#include "netsim/fluid.h"
#include "netsim/workload.h"
#include "stats/quantile.h"

int main() {
  using namespace bblab;
  auto& out = std::cout;
  analysis::print_banner(out, "Extension — bufferbloat vs demand delivery");

  const SimClock clock{2012};
  const netsim::DiurnalModel diurnal{netsim::DiurnalParams{}, clock};
  const netsim::WorkloadGenerator gen{diurnal};

  out << "  tier       plain mean   bloat mean   plain p95    bloat p95\n";
  std::array<char, 160> buf{};
  for (const double tier : {2.0, 6.0, 16.0}) {
    netsim::AccessLink link;
    link.down = Rate::from_mbps(tier);
    link.up = Rate::from_mbps(tier / 8);
    link.rtt_ms = 50.0;
    link.loss = 0.003;

    netsim::WorkloadParams params;
    params.intensity = 1.2;
    params.heavy_intensity = 1.5;
    params.bt_sessions_per_day = 3.0;  // regularly saturates the link

    Rng rng{7};
    const auto flows = gen.generate(params, link, 0.0, 2 * kDay, rng);
    const netsim::FluidLinkSimulator plain{link};
    const netsim::FluidLinkSimulator bloated{
        link, netsim::TcpModel{},
        netsim::FluidOptions{.bufferbloat = true, .buffer_ms = 300.0}};

    const auto summarize = [](const netsim::BinnedUsage& u) {
      std::vector<double> rates;
      rates.reserve(u.bins());
      for (std::size_t i = 0; i < u.bins(); ++i) rates.push_back(u.down_rate(i).mbps());
      const double mean =
          std::accumulate(rates.begin(), rates.end(), 0.0) / static_cast<double>(rates.size());
      return std::pair{mean, stats::p95(rates)};
    };
    const auto [pm, pp] = summarize(plain.run(flows, 0.0, 2 * 2880, 30.0));
    const auto [bm, bp] = summarize(bloated.run(flows, 0.0, 2 * 2880, 30.0));
    std::snprintf(buf.data(), buf.size(),
                  "  %5.1f Mbps  %7.3f Mbps  %7.3f Mbps  %7.3f Mbps  %7.3f Mbps\n",
                  tier, pm, bm, pp, bp);
    out << buf.data();
  }
  out << "  expectation: bloat re-throttles TCP-bound traffic on saturated\n"
         "  low tiers (mean drops) while barely touching roomy links.\n";
  return 0;
}
