// Snapshot-store benchmarks: what does the .bbs format and the artifact
// cache actually buy over re-simulating?
//
//   BM_ColdSimulate    full StudyGenerator run (the price of a cache miss)
//   BM_SnapshotWrite   serializing the generated dataset to disk
//   BM_SnapshotLoad    reloading it via istream (the pre-mmap baseline)
//   BM_ViewLoad        reloading it via mmap + SnapshotView (what
//                      `bblab cat` and the serve daemon use now)
//   BM_ViewConfig      config-only decode through the footer index —
//                      the fingerprint probe the serve LRU issues per
//                      request, without touching the record sections
//   BM_CacheHit        fingerprint lookup + load through ArtifactCache
//
// Arg is population scale in thousandths: 100 -> scale 0.1 (~7k simulated
// household-windows across the three study years), 1600 -> scale 1.6
// (~100k). Each benchmark reports the window count it covered; the
// headline claim recorded in BENCH_store.json is SnapshotLoad vs
// ColdSimulate at the 100k scale.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <map>

#include "core/logging.h"
#include "dataset/generator.h"
#include "store/bbs.h"
#include "store/cache.h"
#include "store/fingerprint.h"

namespace {

using namespace bblab;

dataset::StudyConfig store_config(double scale) {
  dataset::StudyConfig config;
  config.seed = 2014;
  config.threads = 0;  // all cores; the dataset is identical for any value
  config.population_scale = scale;
  config.window_days = 0.1;
  return config;
}

std::size_t household_windows(const dataset::StudyDataset& ds) {
  // Each upgrade pair is two simulated windows (before + after).
  return ds.dasu.size() + ds.fcc.size() + 2 * ds.upgrades.size();
}

/// Generate (once per scale) the dataset the serialization benchmarks
/// reuse, so their setup cost is paid outside the timed loops.
const dataset::StudyDataset& dataset_at(double scale) {
  static std::map<double, dataset::StudyDataset> generated;
  auto it = generated.find(scale);
  if (it == generated.end()) {
    it = generated
             .emplace(scale, dataset::StudyGenerator{market::World::builtin(),
                                                     store_config(scale)}
                                 .generate())
             .first;
  }
  return it->second;
}

std::filesystem::path bench_dir() {
  const auto dir =
      std::filesystem::temp_directory_path() / "bblab_perf_store";
  std::filesystem::create_directories(dir);
  return dir;
}

void BM_ColdSimulate(benchmark::State& state) {
  const double scale = static_cast<double>(state.range(0)) / 1000.0;
  std::size_t windows = 0;
  for (auto _ : state) {
    const auto ds = dataset::StudyGenerator{market::World::builtin(),
                                            store_config(scale)}
                        .generate();
    windows = household_windows(ds);
    benchmark::DoNotOptimize(ds);
  }
  state.counters["household_windows"] = static_cast<double>(windows);
}
BENCHMARK(BM_ColdSimulate)
    ->Arg(100)
    ->Arg(1600)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_SnapshotWrite(benchmark::State& state) {
  const auto& ds = dataset_at(static_cast<double>(state.range(0)) / 1000.0);
  const auto path = bench_dir() / "write.bbs";
  for (auto _ : state) {
    store::write_snapshot_file(path, ds);
  }
  state.counters["household_windows"] =
      static_cast<double>(household_windows(ds));
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() *
                                std::filesystem::file_size(path)));
}
BENCHMARK(BM_SnapshotWrite)->Arg(100)->Arg(1600)->Unit(benchmark::kMillisecond);

void BM_SnapshotLoad(benchmark::State& state) {
  const auto& ds = dataset_at(static_cast<double>(state.range(0)) / 1000.0);
  const auto path = bench_dir() / "load.bbs";
  store::write_snapshot_file(path, ds);
  for (auto _ : state) {
    const auto back = store::read_snapshot_file(path);
    benchmark::DoNotOptimize(back);
  }
  state.counters["household_windows"] =
      static_cast<double>(household_windows(ds));
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() *
                                std::filesystem::file_size(path)));
}
BENCHMARK(BM_SnapshotLoad)->Arg(100)->Arg(1600)->Unit(benchmark::kMillisecond);

void BM_ViewLoad(benchmark::State& state) {
  const auto& ds = dataset_at(static_cast<double>(state.range(0)) / 1000.0);
  const auto path = bench_dir() / "view.bbs";
  store::write_snapshot_file(path, ds);
  for (auto _ : state) {
    const auto view = store::SnapshotView::open(path);
    const auto back = view.dataset();
    benchmark::DoNotOptimize(back);
  }
  state.counters["household_windows"] =
      static_cast<double>(household_windows(ds));
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() *
                                std::filesystem::file_size(path)));
}
BENCHMARK(BM_ViewLoad)->Arg(100)->Arg(1600)->Unit(benchmark::kMillisecond);

void BM_ViewConfig(benchmark::State& state) {
  const auto& ds = dataset_at(static_cast<double>(state.range(0)) / 1000.0);
  const auto path = bench_dir() / "view_cfg.bbs";
  store::write_snapshot_file(path, ds);
  for (auto _ : state) {
    const auto view = store::SnapshotView::open(path);
    const auto config = view.config();
    benchmark::DoNotOptimize(config);
  }
  state.counters["household_windows"] =
      static_cast<double>(household_windows(ds));
}
BENCHMARK(BM_ViewConfig)->Arg(100)->Arg(1600)->Unit(benchmark::kMillisecond);

void BM_CacheHit(benchmark::State& state) {
  const double scale = static_cast<double>(state.range(0)) / 1000.0;
  const auto& ds = dataset_at(scale);
  const store::ArtifactCache cache{bench_dir() / "cache"};
  const auto key =
      store::dataset_fingerprint(store_config(scale), market::World::builtin());
  cache.store(key, ds);
  for (auto _ : state) {
    auto hit = cache.load(key);
    if (!hit) {
      state.SkipWithError("cache entry vanished");
      break;
    }
    benchmark::DoNotOptimize(*hit);
  }
  state.counters["household_windows"] =
      static_cast<double>(household_windows(ds));
}
BENCHMARK(BM_CacheHit)->Arg(100)->Arg(1600)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bblab::set_log_level(bblab::LogLevel::kWarn);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  std::error_code ec;
  std::filesystem::remove_all(
      std::filesystem::temp_directory_path() / "bblab_perf_store", ec);
  return 0;
}
