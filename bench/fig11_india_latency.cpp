// Figure 11 — latency CDFs for India versus the rest of the population,
// across the archival NDT data (2011-13) and the 2014 re-measurements
// (fresh NDT runs and median latency to five popular websites).
//
// Paper reference points (§7.1):
//   Indian users report much higher latencies in every measurement set;
//   nearly every user in India sits above 100 ms
//   web and NDT latency distributions are similar to each other
#include <iostream>

#include "analysis/figures.h"
#include "analysis/report.h"
#include "bench_common.h"

int main() {
  using namespace bblab;
  const auto& ds = bench::bench_dataset();
  const auto fig = analysis::fig11_india_latency(ds);
  auto& out = std::cout;

  analysis::print_banner(out, "Figure 11 — latency: India vs rest of population");
  analysis::print_ecdf(out, "NDT '11-'13, India [ms]", fig.ndt1113_india);
  analysis::print_ecdf(out, "NDT '11-'13, other [ms]", fig.ndt1113_other);
  analysis::print_ecdf(out, "NDT '14, India [ms]", fig.ndt14_india);
  analysis::print_ecdf(out, "NDT '14, other [ms]", fig.ndt14_other);
  analysis::print_ecdf(out, "Web '14, India [ms]", fig.web14_india);
  analysis::print_ecdf(out, "Web '14, other [ms]", fig.web14_other);

  analysis::print_compare(out, "median NDT latency, India vs other",
                          "several times higher in India",
                          analysis::num(fig.ndt1113_india.inverse(0.5)) + " ms vs " +
                              analysis::num(fig.ndt1113_other.inverse(0.5)) + " ms");
  analysis::print_compare(out, "Indian users above 100 ms", "nearly every user",
                          analysis::pct(1.0 - fig.ndt1113_india(100.0)));
  analysis::print_compare(
      out, "web vs NDT latency medians (India)", "similar distributions",
      analysis::num(fig.web14_india.inverse(0.5)) + " ms (web) vs " +
          analysis::num(fig.ndt14_india.inverse(0.5)) + " ms (NDT)");
  return 0;
}
