// Table 5 — percentage of countries per region where a 1 Mbps capacity
// increase costs more than $1 / $5 / $10 (USD PPP) per month.
//
// Paper reference (Table 5):
//   Africa                    100%  84%  74%
//   Asia (all)                 67%  47%  33%
//   Asia (developed)            0%   0%   0%
//   Asia (developing)          83%  58%  42%
//   Central America/Caribbean 100%  86%  14%
//   Europe                     10%   0%   0%
//   Middle East                86%  57%  43%
//   North America               0%   0%   0%
//   South America              78%  55%  33%
#include <array>
#include <cstdio>
#include <iostream>

#include "analysis/report.h"
#include "analysis/tables.h"
#include "bench_common.h"

int main() {
  using namespace bblab;
  const auto& ds = bench::bench_dataset();
  const auto tab = analysis::tab5_region_costs(ds);
  auto& out = std::cout;

  analysis::print_banner(out, "Table 5 — regional cost of increasing capacity");
  std::array<char, 160> buf{};
  out << "  region                         n   >$1    >$5    >$10\n";
  double asia_above1 = 0;
  double asia_above5 = 0;
  double asia_above10 = 0;
  double asia_n = 0;
  for (const auto& row : tab) {
    std::snprintf(buf.data(), buf.size(), "  %-28s %3zu  %5.1f%% %5.1f%% %5.1f%%\n",
                  market::region_label(row.region).c_str(), row.countries,
                  row.pct_above_1, row.pct_above_5, row.pct_above_10);
    out << buf.data();
    if (row.region == market::Region::kAsiaDeveloped ||
        row.region == market::Region::kAsiaDeveloping) {
      const auto n = static_cast<double>(row.countries);
      asia_above1 += row.pct_above_1 / 100.0 * n;
      asia_above5 += row.pct_above_5 / 100.0 * n;
      asia_above10 += row.pct_above_10 / 100.0 * n;
      asia_n += n;
    }
  }
  if (asia_n > 0) {
    std::snprintf(buf.data(), buf.size(), "  %-28s %3.0f  %5.1f%% %5.1f%% %5.1f%%\n",
                  "Asia (all)", asia_n, 100.0 * asia_above1 / asia_n,
                  100.0 * asia_above5 / asia_n, 100.0 * asia_above10 / asia_n);
    out << buf.data();
  }

  out << "  paper:\n"
         "  Africa                        --  100%    84%    74%\n"
         "  Asia (developed)              --    0%     0%     0%\n"
         "  Asia (developing)             --   83%    58%    42%\n"
         "  Central America/Caribbean     --  100%    86%    14%\n"
         "  Europe                        --   10%     0%     0%\n"
         "  Middle East                   --   86%    57%    43%\n"
         "  North America                 --    0%     0%     0%\n"
         "  South America                 --   78%    55%    33%\n";
  return 0;
}
