// Load generator + acceptance bench for `bblab serve`.
//
// Boots an in-process daemon on a unix socket, hammers it with mixed
// figure/experiment/ping queries from concurrent clients at 1 / 2 / 8
// worker threads, and records per-configuration throughput and latency
// (p50/p99) to BENCH_serve.json. Every response body is md5-compared
// against the single-process render oracle; a mismatch or a non-ok
// status counts as a dropped response. The CI gate
// (tools/check_serve_gate.py) demands >= 1000 mixed queries/sec,
// zero drops, and a bounded p99.
//
// Not a google-benchmark binary: the unit of interest is a whole
// daemon configuration under concurrent load, not a single timed loop.
//
// Usage: perf_serve [--out BENCH_serve.json] [--queries N]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/render.h"
#include "core/logging.h"
#include "core/signal.h"
#include "dataset/generator.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "store/bbs.h"

namespace {

using namespace bblab;
using Clock = std::chrono::steady_clock;

struct QueryCase {
  serve::Request request;
  std::string oracle;  ///< expected response body, rendered directly
};

struct ConfigResult {
  std::size_t threads{0};
  std::size_t clients{0};
  std::size_t queries{0};
  double seconds{0};
  double qps{0};
  double p50_ms{0};
  double p99_ms{0};
  std::size_t dropped{0};     ///< non-ok statuses + transport failures
  std::size_t mismatches{0};  ///< ok responses whose bytes diverged
};

double percentile(std::vector<double>& sorted_ms, double p) {
  if (sorted_ms.empty()) return 0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted_ms.size() - 1) + 0.5);
  return sorted_ms[std::min(idx, sorted_ms.size() - 1)];
}

ConfigResult run_config(const std::filesystem::path& dir,
                        const std::filesystem::path& snapshot,
                        const std::vector<QueryCase>& cases,
                        std::size_t threads, std::size_t total_queries) {
  core::reset_shutdown_for_test();
  serve::ServerOptions options;
  options.socket = dir / ("bb" + std::to_string(threads) + ".sock");
  options.threads = threads;
  options.install_signals = false;
  serve::Server server{std::move(options)};
  server.bind();
  std::thread daemon{[&server] { server.run(); }};

  const std::size_t clients = std::max<std::size_t>(4, threads * 2);
  const std::size_t per_client = total_queries / clients;
  std::vector<std::vector<double>> latencies(clients);
  std::atomic<std::size_t> dropped{0};
  std::atomic<std::size_t> mismatches{0};

  const auto start = Clock::now();
  std::vector<std::thread> workers;
  for (std::size_t c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      latencies[c].reserve(per_client);
      try {
        serve::Client client{server.socket_path()};
        for (std::size_t q = 0; q < per_client; ++q) {
          const auto& tc = cases[(c + q) % cases.size()];
          const auto t0 = Clock::now();
          const auto response = client.call(tc.request, /*timeout_ms=*/30000);
          const auto t1 = Clock::now();
          latencies[c].push_back(
              std::chrono::duration<double, std::milli>(t1 - t0).count());
          if (response.status != serve::Status::kOk) {
            ++dropped;
          } else if (response.body != tc.oracle) {
            ++mismatches;
          }
        }
      } catch (const std::exception& e) {
        // A dead client drops everything it had left.
        dropped += per_client - latencies[c].size();
        std::fprintf(stderr, "client %zu died: %s\n", c, e.what());
      }
    });
  }
  for (auto& w : workers) w.join();
  const auto elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();

  server.stop();
  daemon.join();
  core::reset_shutdown_for_test();

  std::vector<double> all;
  for (const auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());

  ConfigResult r;
  r.threads = threads;
  r.clients = clients;
  r.queries = per_client * clients;
  r.seconds = elapsed;
  r.qps = elapsed > 0 ? static_cast<double>(r.queries) / elapsed : 0;
  r.p50_ms = percentile(all, 0.50);
  r.p99_ms = percentile(all, 0.99);
  r.dropped = dropped.load();
  r.mismatches = mismatches.load();
  (void)snapshot;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bblab::set_log_level(bblab::LogLevel::kWarn);
  std::filesystem::path out = "BENCH_serve.json";
  std::size_t total_queries = 4000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else if (std::strcmp(argv[i], "--queries") == 0 && i + 1 < argc) {
      total_queries = static_cast<std::size_t>(std::stoull(argv[++i]));
    } else {
      std::fprintf(stderr, "usage: perf_serve [--out FILE] [--queries N]\n");
      return 2;
    }
  }

  const auto dir =
      std::filesystem::temp_directory_path() / "bblab_perf_serve";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  // A multi-section snapshot big enough that render work dominates the
  // framing overhead, small enough to keep the bench quick.
  dataset::StudyConfig config;
  config.seed = 2014;
  config.population_scale = 0.02;
  config.window_days = 0.3;
  const auto ds =
      dataset::StudyGenerator{market::World::builtin(), config}.generate();
  const auto snapshot = dir / "snap.bbs";
  store::write_snapshot_file(snapshot, ds);

  // Mixed query set with oracle bytes rendered directly (the same render
  // layer the CLI prints through, so CLI stdout is md5-identical).
  std::vector<QueryCase> cases;
  cases.push_back({serve::Request{serve::RequestKind::kPing, "", ""}, "pong"});
  for (const auto& name : analysis::figure_names()) {
    std::ostringstream os;
    analysis::render_figure(os, name, ds);
    cases.push_back(
        {serve::Request{serve::RequestKind::kFigure, name, snapshot.string()},
         os.str()});
  }
  for (const auto& name : analysis::experiment_names()) {
    std::ostringstream os;
    analysis::render_experiment(os, name, ds);
    cases.push_back({serve::Request{serve::RequestKind::kExperiment, name,
                                    snapshot.string()},
                     os.str()});
  }

  std::ostringstream json;
  json << "{\n  \"schema\": \"bblab-serve-bench\",\n  \"benchmarks\": [\n";
  bool first = true;
  bool ok = true;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    const auto r = run_config(dir, snapshot, cases, threads, total_queries);
    std::printf(
        "threads=%zu clients=%zu queries=%zu %.2fs qps=%.0f p50=%.2fms "
        "p99=%.2fms dropped=%zu mismatches=%zu\n",
        r.threads, r.clients, r.queries, r.seconds, r.qps, r.p50_ms, r.p99_ms,
        r.dropped, r.mismatches);
    ok = ok && r.dropped == 0 && r.mismatches == 0;
    char row[512];
    std::snprintf(row, sizeof row,
                  "    {\"name\": \"serve_mixed/threads:%zu\", "
                  "\"threads\": %zu, \"clients\": %zu, \"queries\": %zu, "
                  "\"seconds\": %.4f, \"qps\": %.1f, \"p50_ms\": %.3f, "
                  "\"p99_ms\": %.3f, \"dropped\": %zu, \"mismatches\": %zu}",
                  r.threads, r.threads, r.clients, r.queries, r.seconds, r.qps,
                  r.p50_ms, r.p99_ms, r.dropped, r.mismatches);
    json << (first ? "" : ",\n") << row;
    first = false;
  }
  json << "\n  ]\n}\n";

  std::ofstream f{out, std::ios::trunc};
  f << json.str();
  f.close();
  std::printf("wrote %s\n", out.string().c_str());

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  if (!ok) {
    std::fprintf(stderr, "perf_serve: dropped or mismatched responses\n");
    return 1;
  }
  return 0;
}
