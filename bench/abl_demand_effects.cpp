// Ablation — which planted effect does each experiment actually detect?
//
// DESIGN.md installs three causal mechanisms in the demand model
// (capacity saturation, unmet-need pressure, quality suppression). This
// harness disables them one at a time, re-runs the headline experiments,
// and reports the detected effect sizes. Expectations:
//   * no capacity effect  -> Table 1 (within-user upgrades) collapses
//   * no pressure effect  -> Table 3 (price) collapses
//   * no quality effect   -> Table 7 (latency) weakens toward the purely
//                            mechanical TCP penalty
//   * full placebo        -> everything near 50%
#include <array>
#include <cstdio>
#include <iostream>

#include "analysis/report.h"
#include "analysis/tables.h"
#include "bench_common.h"

namespace {

struct Variant {
  const char* name;
  bool no_capacity;
  bool no_pressure;
  bool no_quality;
  bool placebo;
};

}  // namespace

int main() {
  using namespace bblab;
  auto& out = std::cout;
  analysis::print_banner(out, "Ablation — demand-model effects vs experiment outcomes");

  const Variant variants[] = {
      {"full model", false, false, false, false},
      {"no capacity effect", true, false, false, false},
      {"no pressure effect", false, true, false, false},
      {"no quality effect", false, false, true, false},
      {"placebo (all off)", false, false, false, true},
  };

  out << "  variant               tab1 peak   tab3 price (mid) tab7 avg-latency\n";
  std::array<char, 200> buf{};
  for (const auto& v : variants) {
    dataset::StudyConfig config = bench::bench_config();
    config.population_scale = bench::env_or("BBLAB_ABL_SCALE", 0.15);
    config.window_days = 1.0;
    config.last_year = 2012;
    config.disable_capacity_effect = v.no_capacity;
    config.disable_pressure_effect = v.no_pressure;
    config.disable_quality_effect = v.no_quality;
    config.placebo = v.placebo;
    const auto ds =
        dataset::StudyGenerator{market::World::builtin(), config}.generate();

    const auto tab1 = analysis::tab1_upgrade_experiment(ds);
    const auto tab3 = analysis::tab3_price_experiment(ds);
    const auto tab7 = analysis::tab7_latency_experiment(ds);
    double t7 = 0.0;
    int t7n = 0;
    for (const auto& row : tab7.rows) {
      if (row.result.test.trials < 10) continue;
      t7 += row.result.test.fraction;
      ++t7n;
    }
    // Mid-bracket of Table 3: largest pools, most stable ablation readout.
    std::snprintf(buf.data(), buf.size(), "  %-20s  %5.1f%%      %5.1f%%           %5.1f%%\n",
                  v.name, 100.0 * tab1.peak.test.fraction,
                  100.0 * tab3.mid.test.fraction,
                  t7n > 0 ? 100.0 * t7 / t7n : -1.0);
    out << buf.data();
  }
  out << "  (fractions near 50% mean the pipeline correctly finds nothing)\n";
  return 0;
}
