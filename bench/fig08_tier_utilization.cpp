// Figure 8 — p95 link utilization CDFs by service tier within each
// case-study country.
//
// Paper reference points (§5):
//   US: faster tiers use ever-smaller fractions of the link at peak
//   Botswana <1 Mbps: avg p95 utilization ~80% (vs ~52% US overall)
//   Saudi Arabia 1-8 Mbps: median utilization ~60% vs ~43% same tier US
//   Japan >32 Mbps: heavily under-utilized, avg ~10%
#include <iostream>

#include "analysis/figures.h"
#include "analysis/report.h"
#include "bench_common.h"
#include "stats/descriptive.h"

int main() {
  using namespace bblab;
  const auto& ds = bench::bench_dataset();
  const std::vector<std::string> countries{"US", "BW", "SA", "JP"};
  const auto fig = analysis::fig8_tier_utilization(ds, countries);
  auto& out = std::cout;

  analysis::print_banner(out, "Figure 8 — p95 utilization by tier and country");
  for (const auto& c : fig) {
    out << "  [" << c.code << "]\n";
    for (const auto& [tier, ecdf] : c.tiers) {
      analysis::print_ecdf(out, tier, ecdf);
    }
  }

  const auto median_of = [&](const std::string& code,
                             const std::string& tier) -> double {
    for (const auto& c : fig) {
      if (c.code != code) continue;
      const auto it = c.tiers.find(tier);
      if (it != c.tiers.end()) return it->second.inverse(0.5);
    }
    return -1.0;
  };

  analysis::print_compare(out, "US utilization falls with tier",
                          "monotone decline across tiers",
                          "<1: " + analysis::pct(median_of("US", "<1 Mbps")) +
                              ", 1-8: " + analysis::pct(median_of("US", "1-8 Mbps")) +
                              ", 8-16: " + analysis::pct(median_of("US", "8-16 Mbps")) +
                              ", >32: " + analysis::pct(median_of("US", ">32 Mbps")));
  analysis::print_compare(out, "BW <1 Mbps vs US <1 Mbps (median p95 util)",
                          "~80% vs lower in the US",
                          analysis::pct(median_of("BW", "<1 Mbps")) + " vs " +
                              analysis::pct(median_of("US", "<1 Mbps")));
  analysis::print_compare(out, "SA 1-8 Mbps vs US 1-8 Mbps (median p95 util)",
                          "60% vs 43%",
                          analysis::pct(median_of("SA", "1-8 Mbps")) + " vs " +
                              analysis::pct(median_of("US", "1-8 Mbps")));
  analysis::print_compare(out, "JP >32 Mbps median p95 utilization", "~10%",
                          analysis::pct(median_of("JP", ">32 Mbps")));
  return 0;
}
