// Table 3 — price-of-access natural experiment: users in markets where
// broadband is pricier impose higher demand on comparable connections.
//
// Paper reference points (§5):
//   ($0,$25] vs ($25,$60]: H holds 63.4%, p = 8.89e-22
//   ($0,$25] vs ($60,inf): H holds 72.2%, p = 5.40e-10
#include <iostream>

#include "analysis/report.h"
#include "analysis/tables.h"
#include "bench_common.h"

int main() {
  using namespace bblab;
  const auto& ds = bench::bench_dataset();
  const auto tab = analysis::tab3_price_experiment(ds);
  auto& out = std::cout;

  analysis::print_banner(out, "Table 3 — price of broadband access vs demand");
  analysis::print_experiment(out, tab.mid);
  analysis::print_experiment(out, tab.high);

  analysis::print_compare(out, "($0,$25] vs ($25,$60]: % H holds", "63.4%",
                          analysis::pct(tab.mid.test.fraction) +
                              " (p=" + analysis::num(tab.mid.test.p_value) + ")");
  analysis::print_compare(out, "($0,$25] vs ($60,inf): % H holds", "72.2%",
                          analysis::pct(tab.high.test.fraction) +
                              " (p=" + analysis::num(tab.high.test.p_value) + ")");
  analysis::print_compare(out, "effect grows with price gap",
                          "yes (63.4% -> 72.2%)",
                          tab.high.test.fraction > tab.mid.test.fraction ? "yes" : "no");
  return 0;
}
