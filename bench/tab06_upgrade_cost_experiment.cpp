// Table 6 — cost-of-upgrading natural experiment: users in markets where
// adding capacity is pricier impose higher average demand.
//
// Paper reference (§6):
//   (a) average demand w/ BitTorrent:
//       ($0,.5] vs (.5,1]: 53.8% (p=0.00717); (.5,1] vs (1,inf): 58.7% (p=0.0110)
//   (b) average demand w/o BitTorrent:
//       ($0,.5] vs (.5,1]: 52.2%* (p=0.0947); (.5,1] vs (1,inf): 56.3% (p=0.0265)
//   (* = not statistically significant)
#include <iostream>

#include "analysis/report.h"
#include "analysis/tables.h"
#include "bench_common.h"

int main() {
  using namespace bblab;
  const auto& ds = bench::bench_dataset();
  const auto tab = analysis::tab6_upgrade_cost_experiment(ds);
  auto& out = std::cout;

  analysis::print_banner(out, "Table 6 — cost of increasing capacity vs demand");
  out << "  (a) average demand, with BitTorrent:\n";
  analysis::print_experiment(out, tab.with_bt_mid);
  analysis::print_experiment(out, tab.with_bt_high);
  out << "  (b) average demand, without BitTorrent:\n";
  analysis::print_experiment(out, tab.no_bt_mid);
  analysis::print_experiment(out, tab.no_bt_high);

  analysis::print_compare(out, "(a) % H holds", "53.8% / 58.7%",
                          analysis::pct(tab.with_bt_mid.test.fraction) + " / " +
                              analysis::pct(tab.with_bt_high.test.fraction));
  analysis::print_compare(out, "(b) % H holds", "52.2%* / 56.3%",
                          analysis::pct(tab.no_bt_mid.test.fraction) + " / " +
                              analysis::pct(tab.no_bt_high.test.fraction));
  analysis::print_compare(
      out, "effect larger for the most expensive markets", "yes",
      tab.with_bt_high.test.fraction > tab.with_bt_mid.test.fraction ? "yes" : "no");
  return 0;
}
