// Observability overhead benchmarks: the cost of the instruments
// themselves, and the end-to-end tax they put on the pipeline.
//
// The budget (DESIGN.md §10): with tracing disabled the whole subsystem
// must cost < 3% on the perf_pipeline workload — a disabled span is one
// relaxed load, a counter add is one relaxed fetch_add into a per-thread
// slot. BM_PipelineObsOverhead measures that tax directly and reports it
// as the `overhead_pct` counter (tracing on vs off over the identical
// workload), so a regression shows up as a number, not a vibe.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <limits>
#include <string>
#include <vector>

#include "core/rng.h"
#include "core/thread_pool.h"
#include "measurement/pipeline.h"
#include "netsim/diurnal.h"
#include "netsim/workload.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace {

using namespace bblab;

// --- instrument microcosts -------------------------------------------------

void BM_ObsCounterAdd(benchmark::State& state) {
  static obs::Counter& c = obs::Registry::instance().counter("bench.counter");
  for (auto _ : state) {
    c.add();
  }
  benchmark::DoNotOptimize(c.value());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsCounterAdd);

void BM_ObsHistogramObserve(benchmark::State& state) {
  static obs::Histogram& h = obs::Registry::instance().histogram("bench.hist");
  double v = 0.0;
  for (auto _ : state) {
    h.observe(v);
    v += 0.37;
    if (v > 20000.0) v = 0.0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsHistogramObserve);

// The production configuration: instrumented code running with tracing
// off. This is the per-span price every hot path pays by default.
void BM_ObsSpanDisabled(benchmark::State& state) {
  obs::set_tracing(false);
  for (auto _ : state) {
    OBS_SPAN("bench_disabled");
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsSpanDisabled);

void BM_ObsSpanEnabled(benchmark::State& state) {
  obs::reset_spans_for_test();
  obs::set_tracing(true);
  for (auto _ : state) {
    OBS_SPAN("bench_enabled");
    benchmark::ClobberMemory();
  }
  obs::set_tracing(false);
  obs::reset_spans_for_test();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsSpanEnabled);

// --- end-to-end pipeline tax -----------------------------------------------

struct PipelineFixture {
  SimClock clock{2011};
  netsim::DiurnalModel diurnal{netsim::DiurnalParams{}, clock};
  netsim::WorkloadGenerator workload{diurnal};
  measurement::DasuCollector dasu{measurement::DasuCollectorParams{}, diurnal};
  measurement::GatewayCollector gateway{};
  measurement::PipelineToolkit kit;
  std::vector<measurement::HouseholdTask> tasks{32};
  Rng base{2014};

  PipelineFixture() {
    kit.workload = &workload;
    kit.dasu = &dasu;
    kit.gateway = &gateway;
    Rng rng{11};
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      auto& t = tasks[i];
      t.link.down = Rate::from_mbps(rng.uniform(2.0, 60.0));
      t.link.up = Rate::from_mbps(rng.uniform(0.5, 6.0));
      t.link.rtt_ms = rng.uniform(15.0, 250.0);
      t.link.loss = rng.uniform(0.0, 0.005);
      t.workload.intensity = rng.uniform(0.5, 1.5);
      t.workload.bt_sessions_per_day = i % 4 == 0 ? 1.0 : 0.0;
      t.bins = 1440;
      t.collector = i % 3 == 0 ? measurement::CollectorKind::kGateway
                               : measurement::CollectorKind::kDasu;
      t.stream_id = i;
    }
  }
};

/// Best-of-`reps` wall time for one full pipeline pass with tracing in
/// the given state. Best-of (not mean) rejects scheduler noise, which on
/// a shared CI box dwarfs the effect being measured.
double timed_pipeline_ms(const PipelineFixture& fx, core::ThreadPool& pool,
                         bool tracing, int reps) {
  obs::set_tracing(tracing);
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    obs::reset_spans_for_test();
    const auto t0 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(
        measurement::parallel_simulate_households(fx.kit, fx.tasks, fx.base, pool));
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best,
                    std::chrono::duration<double, std::milli>{t1 - t0}.count());
  }
  obs::set_tracing(false);
  obs::reset_spans_for_test();
  return best;
}

void BM_PipelineObsOverhead(benchmark::State& state) {
  const PipelineFixture fx;
  core::ThreadPool pool{static_cast<std::size_t>(state.range(0))};
  // Warm pools, caches and lazily-registered instruments off the clock.
  timed_pipeline_ms(fx, pool, false, 1);

  for (auto _ : state) {
    benchmark::DoNotOptimize(
        measurement::parallel_simulate_households(fx.kit, fx.tasks, fx.base, pool));
  }

  const double off_ms = timed_pipeline_ms(fx, pool, false, 5);
  const double on_ms = timed_pipeline_ms(fx, pool, true, 5);
  state.counters["baseline_ms"] = off_ms;
  state.counters["traced_ms"] = on_ms;
  state.counters["overhead_pct"] = (on_ms - off_ms) / off_ms * 100.0;
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(fx.tasks.size()));
}
BENCHMARK(BM_PipelineObsOverhead)->Arg(1)->Arg(4)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
