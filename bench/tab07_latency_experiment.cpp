// Table 7 — latency natural experiment: moving from problematic latency
// (512-2048 ms) to any lower latency band raises peak demand.
//
// Paper reference (§7.1):
//   (512,2048] vs (0,64]:    63.5% (p=0.00825)
//   (512,2048] vs (64,128]:  63.4% (p=0.00620)
//   (512,2048] vs (128,256]: 59.4% (p=0.00766)
//   (512,2048] vs (256,512]: 56.3% (p=0.0330)
//   India vs capacity-matched US users: India lower 62% of the time.
#include <iostream>

#include "analysis/report.h"
#include "analysis/tables.h"
#include "bench_common.h"

int main() {
  using namespace bblab;
  const auto& ds = bench::bench_dataset();
  const auto tab = analysis::tab7_latency_experiment(ds);
  auto& out = std::cout;

  analysis::print_banner(out, "Table 7 — latency vs peak demand (no BitTorrent)");
  for (const auto& row : tab.rows) {
    analysis::print_experiment(out, row.result);
  }

  const char* paper[] = {"63.5%", "63.4%", "59.4%", "56.3%"};
  for (std::size_t i = 0; i < tab.rows.size() && i < 4; ++i) {
    analysis::print_compare(out,
                            "(512,2048] vs " + tab.rows[i].treatment_label +
                                ": % H holds",
                            paper[i], analysis::pct(tab.rows[i].result.test.fraction));
  }

  analysis::print_experiment(out, tab.us_vs_india);
  analysis::print_compare(out, "US beats capacity-matched India users",
                          "62% of the time",
                          analysis::pct(tab.us_vs_india.test.fraction));
  return 0;
}
