// Table 4 — the four-market case study: Botswana, Saudi Arabia, US, Japan.
//
// Paper reference (Table 4):
//   country        users  median cap  tier   price  GDP pc   % income
//   Botswana          67      0.517   0.512  $100   $14,993  8.0%
//   Saudi Arabia     120      4.21    4      $79    $29,114  3.3%
//   US              3759     17.6     18     $53    $49,797  1.3%
//   Japan             73     29.0     26     $37    $34,532  1.3%
#include <array>
#include <cstdio>
#include <iostream>

#include "analysis/report.h"
#include "analysis/tables.h"
#include "bench_common.h"

int main() {
  using namespace bblab;
  const auto& ds = bench::bench_dataset();
  const auto tab = analysis::tab4_case_study(ds, {"BW", "SA", "US", "JP"});
  auto& out = std::cout;

  analysis::print_banner(out, "Table 4 — 'typical' price of broadband per market");
  std::array<char, 200> buf{};
  out << "  country             users  med.cap  tier    price    GDP pc   %income\n";
  for (const auto& row : tab) {
    std::snprintf(buf.data(), buf.size(),
                  "  %-18s %6zu  %7.3g  %6.3g  $%-7.4g $%-8.5g %.1f%%\n",
                  row.name.c_str(), row.users, row.median_capacity_mbps,
                  row.nearest_tier_mbps, row.tier_price_usd_ppp,
                  row.gdp_per_capita_ppp, row.income_share * 100.0);
    out << buf.data();
  }

  out << "  paper:\n"
         "  Botswana               67    0.517   0.512  $100     $14,993   8.0%\n"
         "  Saudi Arabia          120    4.21    4      $79      $29,114   3.3%\n"
         "  US                   3759   17.6    18      $53      $49,797   1.3%\n"
         "  Japan                  73   29.0    26      $37      $34,532   1.3%\n";
  return 0;
}
