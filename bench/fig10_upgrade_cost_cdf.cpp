// Figure 10 — CDF of the monthly cost (USD PPP) of increasing capacity by
// 1 Mbps across the world's broadband markets, plus the §6 correlation
// statistics.
//
// Paper reference points (§6):
//   66% of markets have price-capacity correlation r > 0.8; 81% have r > 0.4
//   Japan / South Korea / Hong Kong below $0.10 per Mbps
//   Canada / US slightly above $0.50
//   Ghana / Uganda (Africa, Middle East) at the expensive end, some
//   markets above $100 (Paraguay, Ivory Coast)
//   developed countries mostly < $1; India & China < $1 despite developing
#include <iostream>

#include "analysis/figures.h"
#include "analysis/report.h"
#include "bench_common.h"

int main() {
  using namespace bblab;
  const auto& ds = bench::bench_dataset();
  const auto fig = analysis::fig10_upgrade_cost_cdf(ds);
  auto& out = std::cout;

  analysis::print_banner(out, "Figure 10 — cost of +1 Mbps across markets");
  analysis::print_ecdf(out, "upgrade cost [$ PPP / Mbps / month]", fig.upgrade_cost);

  analysis::print_compare(out, "markets with r > 0.8 / r > 0.4", "66% / 81%",
                          analysis::pct(fig.share_strong_corr) + " / " +
                              analysis::pct(fig.share_moderate_corr));

  const auto example = [&](const std::string& code) {
    const auto it = fig.examples.find(code);
    return it != fig.examples.end() ? "$" + analysis::num(it->second) : "n/a";
  };
  analysis::print_compare(out, "Japan / South Korea", "< $0.10",
                          example("JP") + " / " + example("KR"));
  analysis::print_compare(out, "US / Canada", "~$0.50-1", example("US") + " / " + example("CA"));
  analysis::print_compare(out, "Ghana / Uganda", ">> $10",
                          example("GH") + " / " + example("UG"));
  analysis::print_compare(out, "India / China (the Asian exceptions)", "< $1",
                          example("IN") + " / " + example("CN"));
  return 0;
}
