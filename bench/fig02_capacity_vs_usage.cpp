// Figure 2 — mean and 95th-percentile download usage versus link
// capacity, with and without BitTorrent periods.
//
// Paper reference points (§3.1):
//   usage strongly correlated with capacity bin (r >= 0.87 in all panels)
//   usage levels off at higher capacities (law of diminishing returns)
//   even at p95, utilization runs 10-48% of capacity
#include <iostream>
#include <map>

#include "analysis/figures.h"
#include "analysis/report.h"
#include "bench_common.h"
#include "stats/binning.h"

int main() {
  using namespace bblab;
  const auto& ds = bench::bench_dataset();
  const auto fig = analysis::fig2_capacity_vs_usage(ds);
  auto& out = std::cout;

  analysis::print_banner(out, "Figure 2 — usage vs capacity (Dasu, global)");
  analysis::print_series(out, "(a) mean, w/ BitTorrent", fig.mean_bt);
  analysis::print_series(out, "(b) p95, w/ BitTorrent", fig.peak_bt);
  analysis::print_series(out, "(c) mean, no BitTorrent", fig.mean_nobt);
  analysis::print_series(out, "(d) p95, no BitTorrent", fig.peak_nobt);

  analysis::print_compare(out, "correlation r (all four panels)",
                          ">= 0.87 (0.870 / 0.913 / 0.885 / 0.890)",
                          analysis::num(fig.mean_bt.r) + " / " +
                              analysis::num(fig.peak_bt.r) + " / " +
                              analysis::num(fig.mean_nobt.r) + " / " +
                              analysis::num(fig.peak_nobt.r));

  // Diminishing returns: usage ratio between adjacent bins shrinks.
  const auto& pts = fig.peak_nobt.points;
  if (pts.size() >= 4) {
    const double low_gain =
        pts[1].usage_mbps.mean / std::max(1e-9, pts[0].usage_mbps.mean);
    const double high_gain = pts[pts.size() - 1].usage_mbps.mean /
                             std::max(1e-9, pts[pts.size() - 2].usage_mbps.mean);
    analysis::print_compare(out, "bin-over-bin demand growth (low vs high tiers)",
                            "larger at low tiers (diminishing returns)",
                            analysis::num(low_gain) + "x vs " +
                                analysis::num(high_gain) + "x");
  }

  // Peak utilization range across bins: average per-user p95 utilization
  // of the measured capacity, over well-populated bins.
  {
    std::map<int, std::pair<double, std::size_t>> util_by_bin;
    for (const auto& r : ds.dasu) {
      const auto bin = stats::CapacityBins::bin_of(r.capacity);
      auto& [sum, n] = util_by_bin[bin];
      sum += std::min(1.0, r.peak_utilization());
      ++n;
    }
    double min_util = 1e9;
    double max_util = 0.0;
    for (const auto& [bin, agg] : util_by_bin) {
      if (agg.second < 30) continue;
      const double util = agg.first / static_cast<double>(agg.second);
      min_util = std::min(min_util, util);
      max_util = std::max(max_util, util);
    }
    analysis::print_compare(out, "avg p95 utilization range across bins", "10% - 48%",
                            analysis::pct(min_util) + " - " + analysis::pct(max_util));
  }
  return 0;
}
