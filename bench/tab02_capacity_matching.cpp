// Table 2 — matched-pair capacity experiment: do users with the next
// doubling of capacity impose higher peak demand, holding quality and
// market features fixed?
//
// Paper reference points (§3.2):
//   Dasu: significant for control bins up to (3.2,6.4] (H holds 53-75%),
//         fades to ~50% (not significant) above 12.8 Mbps
//   FCC:  significant across all bins (55-66%), because faster US tiers
//         cost moderately more
#include <iostream>

#include "analysis/report.h"
#include "analysis/tables.h"
#include "bench_common.h"

int main() {
  using namespace bblab;
  const auto& ds = bench::bench_dataset();
  const auto tab = analysis::tab2_capacity_matching(ds);
  auto& out = std::cout;

  analysis::print_banner(out, "Table 2 — capacity vs demand, matched users");
  out << "  Dasu (global; matched on RTT, loss, access price, upgrade cost):\n";
  for (const auto& row : tab.dasu) analysis::print_experiment(out, row.result);
  out << "  FCC (US only; matched on RTT, loss):\n";
  for (const auto& row : tab.fcc) analysis::print_experiment(out, row.result);

  // Shape checks against the paper.
  double dasu_low = 0.0;
  int dasu_low_n = 0;
  double dasu_high = 0.0;
  int dasu_high_n = 0;
  for (const auto& row : tab.dasu) {
    if (row.result.test.trials < 20) continue;
    if (row.control_bin <= 6) {
      dasu_low += row.result.test.fraction;
      ++dasu_low_n;
    } else {
      dasu_high += row.result.test.fraction;
      ++dasu_high_n;
    }
  }
  analysis::print_compare(
      out, "Dasu: mean % H holds, bins <= 6.4 Mbps vs above",
      "53-75% (significant) vs ~51-57% (mostly not)",
      (dasu_low_n ? analysis::pct(dasu_low / dasu_low_n) : "n/a") + " vs " +
          (dasu_high_n ? analysis::pct(dasu_high / dasu_high_n) : "n/a"));

  double fcc_sum = 0.0;
  int fcc_n = 0;
  int fcc_sig = 0;
  for (const auto& row : tab.fcc) {
    if (row.result.test.trials < 20) continue;
    fcc_sum += row.result.test.fraction;
    ++fcc_n;
    if (row.result.test.conclusive()) ++fcc_sig;
  }
  analysis::print_compare(
      out, "FCC: mean % H holds / significant rows",
      "55-66%, significant in all bins",
      (fcc_n ? analysis::pct(fcc_sum / fcc_n) : "n/a") + ", " +
          std::to_string(fcc_sig) + "/" + std::to_string(fcc_n) + " significant");
  return 0;
}
