// Figure 7 — download capacity and peak-utilization CDFs for the four
// case-study markets.
//
// Paper reference points (§5):
//   capacities ascend Botswana -> Saudi Arabia -> US -> Japan
//   (BW clustered ~512 kbps, SA ~4 Mbps, US wide, JP 60% >= 25 Mbps)
//   peak utilization appears in exactly the reverse order: BW highest
//   (avg ~80%), then SA, then US (~52%), Japan lowest (~10%)
#include <iostream>

#include "analysis/figures.h"
#include "analysis/report.h"
#include "bench_common.h"

int main() {
  using namespace bblab;
  const auto& ds = bench::bench_dataset();
  const std::vector<std::string> countries{"BW", "SA", "US", "JP"};
  const auto fig = analysis::fig7_country_cdfs(ds, countries);
  auto& out = std::cout;

  analysis::print_banner(out, "Figure 7 — capacity and utilization by country");
  for (const auto& c : fig) {
    analysis::print_ecdf(out, "(a) capacity [Mbps], " + c.code, c.capacity_mbps);
  }
  for (const auto& c : fig) {
    analysis::print_ecdf(out, "(b) p95 utilization, " + c.code, c.peak_utilization);
  }

  std::string caps;
  std::string utils;
  for (const auto& c : fig) {
    caps += c.code + "=" + analysis::num(c.capacity_mbps.inverse(0.5)) + " ";
    utils += c.code + "=" + analysis::pct(c.peak_utilization.inverse(0.5)) + " ";
  }
  analysis::print_compare(out, "median capacity ordering",
                          "BW < SA < US < JP (0.5 / 4.2 / 17.6 / 29 Mbps)", caps);
  analysis::print_compare(out, "median p95 utilization ordering",
                          "exactly reversed: BW > SA > US > JP", utils);
  return 0;
}
