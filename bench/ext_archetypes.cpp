// Extension — user categories (the paper's §10 future work: "it will be
// interesting to investigate how different categories of users (e.g.,
// gamers, shoppers or movie-watchers) ... are impacted by different
// market and service features").
//
// Using the generator's ground-truth archetypes as the category labels,
// this harness reports per-category demand profiles and re-runs the
// capacity experiment within the two largest categories.
#include <array>
#include <cstdio>
#include <iostream>

#include "analysis/common.h"
#include "analysis/report.h"
#include "bench_common.h"
#include "causal/experiment.h"
#include "stats/binning.h"
#include "stats/descriptive.h"

int main() {
  using namespace bblab;
  auto& out = std::cout;
  const auto& ds = bench::bench_dataset();
  analysis::print_banner(out, "Extension — demand by user category (§10 future work)");

  const auto records = analysis::dasu_records(ds);
  std::array<char, 200> buf{};
  out << "  category   n      mean dl     p95 dl      p95 dl noBT  BT share\n";
  for (const auto archetype : behavior::all_archetypes()) {
    const auto recs = analysis::filter(records, [&](const dataset::UserRecord& r) {
      return r.archetype == archetype;
    });
    if (recs.size() < 20) continue;
    stats::RunningStats mean_dl;
    stats::RunningStats peak_dl;
    stats::RunningStats peak_nobt;
    stats::RunningStats bt_share;
    for (const auto* r : recs) {
      mean_dl.add(r->usage.mean_down.kbps());
      peak_dl.add(r->usage.peak_down.kbps());
      peak_nobt.add(r->usage.peak_down_no_bt.kbps());
      bt_share.add(r->usage.bt_share());
    }
    std::snprintf(buf.data(), buf.size(),
                  "  %-9s %5zu  %7.0f kbps %7.0f kbps %7.0f kbps  %5.1f%%\n",
                  behavior::archetype_label(archetype).c_str(), recs.size(),
                  mean_dl.mean(), peak_dl.mean(), peak_nobt.mean(),
                  100.0 * bt_share.mean());
    out << buf.data();
  }

  // Within-category capacity experiment: does the §3 capacity effect hold
  // for light users as it does for heavy ones?
  const auto outcome = [](const dataset::UserRecord& r) {
    return analysis::peak_down_bps(r, false);
  };
  causal::ExperimentOptions options;
  options.matcher.absolute_slacks = {1e-9, 2e-4, 1e-9, 0.02};
  const causal::NaturalExperiment experiment{options};
  for (const auto archetype :
       {behavior::Archetype::kLight, behavior::Archetype::kStreamer}) {
    const auto recs = analysis::filter(records, [&](const dataset::UserRecord& r) {
      return r.archetype == archetype;
    });
    // Pool adjacent capacity classes: (0.8, 3.2] vs (3.2, 12.8].
    const auto in_band = [&](double lo, double hi) {
      return analysis::make_units(
          analysis::filter(recs,
                           [&](const dataset::UserRecord& r) {
                             const double c = r.capacity.mbps();
                             return c > lo && c <= hi;
                           }),
          outcome, analysis::covariates_quality_and_market());
    };
    const auto result =
        experiment.run("capacity effect, " + behavior::archetype_label(archetype),
                       in_band(3.2, 12.8), in_band(0.8, 3.2));
    analysis::print_experiment(out, result);
  }
  analysis::print_compare(out, "capacity effect within categories",
                          "paper did not separate categories (future work)",
                          "both categories show the effect when pools suffice");
  return 0;
}
