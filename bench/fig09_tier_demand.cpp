// Figure 9 — average p95 demand by country and service tier.
//
// Paper reference points (§5):
//   BW <1 Mbps: 410 kbps vs US <1 Mbps: 286 kbps
//   SA 1-8 Mbps ~37% above US 1-8 Mbps
//   US demand increases tier over tier even as utilization falls
//   US >32 Mbps about 830 kbps above JP >32 Mbps
#include <array>
#include <cstdio>
#include <iostream>

#include "analysis/figures.h"
#include "analysis/report.h"
#include "bench_common.h"

int main() {
  using namespace bblab;
  const auto& ds = bench::bench_dataset();
  const auto fig = analysis::fig9_tier_demand(ds, {"BW", "SA", "US", "JP"});
  auto& out = std::cout;

  analysis::print_banner(out, "Figure 9 — average p95 demand by country and tier");
  std::array<char, 160> buf{};
  for (const auto& bar : fig) {
    std::snprintf(buf.data(), buf.size(), "  %-3s %-11s %8.4f Mbps ± %-7.4f (n=%zu)\n",
                  bar.country.c_str(), bar.tier.c_str(), bar.peak_demand_mbps.mean,
                  bar.peak_demand_mbps.half_width, bar.users);
    out << buf.data();
  }

  const auto demand = [&](const std::string& country, const std::string& tier) {
    for (const auto& bar : fig) {
      if (bar.country == country && bar.tier == tier) return bar.peak_demand_mbps.mean;
    }
    return -1.0;
  };

  const double bw = demand("BW", "<1 Mbps");
  const double us_low = demand("US", "<1 Mbps");
  if (bw > 0 && us_low > 0) {
    analysis::print_compare(out, "BW vs US, <1 Mbps tier", "410 vs 286 kbps (+43%)",
                            analysis::num(bw * 1000) + " vs " +
                                analysis::num(us_low * 1000) + " kbps (" +
                                analysis::pct(bw / us_low - 1.0) + ")");
  }
  const double sa = demand("SA", "1-8 Mbps");
  const double us_mid = demand("US", "1-8 Mbps");
  if (sa > 0 && us_mid > 0) {
    analysis::print_compare(out, "SA vs US, 1-8 Mbps tier", "+37% in Saudi Arabia",
                            analysis::pct(sa / us_mid - 1.0));
  }
  const double us_top = demand("US", ">32 Mbps");
  const double jp_top = demand("JP", ">32 Mbps");
  if (us_top > 0 && jp_top > 0) {
    analysis::print_compare(out, "US vs JP, >32 Mbps tier", "US ~830 kbps higher",
                            "US " + analysis::num((us_top - jp_top) * 1000) +
                                " kbps higher");
  }
  // US demand rises tier over tier.
  bool monotone = true;
  double prev = -1.0;
  for (const auto* tier : {"<1 Mbps", "1-8 Mbps", "8-16 Mbps", "16-32 Mbps", ">32 Mbps"}) {
    const double d = demand("US", tier);
    if (d < 0) continue;
    if (prev > 0 && d < prev) monotone = false;
    prev = d;
  }
  analysis::print_compare(out, "US demand increases on each tier", "yes",
                          monotone ? "yes" : "no");
  return 0;
}
