// Figure 6 — usage versus capacity by study year (2011-2013).
//
// Paper reference points (§4):
//   demand within each capacity class stays constant across years despite
//   the fourfold growth of global IP traffic; a natural experiment finds
//   no significant change in demand at any speed tier; only very fast
//   (~100 Mbps) connections show a slight increase.
#include <iostream>

#include "analysis/figures.h"
#include "analysis/report.h"
#include "bench_common.h"

int main() {
  using namespace bblab;
  const auto& ds = bench::bench_dataset();
  const auto fig = analysis::fig6_longitudinal(ds);
  auto& out = std::cout;

  analysis::print_banner(out, "Figure 6 — longitudinal usage vs capacity by year");
  for (const auto& [year, series] : fig.peak_nobt) {
    analysis::print_series(out, "p95 no-BT, " + std::to_string(year), series);
  }
  for (const auto& [year, series] : fig.mean_nobt) {
    analysis::print_series(out, "mean no-BT, " + std::to_string(year), series);
  }

  // Per-bin cross-year spread: max/min ratio of per-year bin means.
  double worst_ratio = 1.0;
  if (!fig.peak_nobt.empty()) {
    const auto& first_series = fig.peak_nobt.begin()->second;
    for (const auto& p0 : first_series.points) {
      double lo = p0.usage_mbps.mean;
      double hi = p0.usage_mbps.mean;
      for (const auto& [year, series] : fig.peak_nobt) {
        for (const auto& p : series.points) {
          if (p.bin == p0.bin && p.users >= 15) {
            lo = std::min(lo, p.usage_mbps.mean);
            hi = std::max(hi, p.usage_mbps.mean);
          }
        }
      }
      if (lo > 0) worst_ratio = std::max(worst_ratio, hi / lo);
    }
  }
  analysis::print_compare(out, "largest cross-year demand ratio within a bin",
                          "~1 (flat at every tier)", analysis::num(worst_ratio) + "x");

  out << "  year-over-year natural experiments (peak demand, matched users):\n";
  for (const auto& e : fig.year_experiments) {
    analysis::print_experiment(out, e);
  }
  analysis::print_compare(out, "year experiments verdict",
                          "no significant change at any tier",
                          "see rows above (conclusive rows would be flagged)");
  return 0;
}
