// Microbenchmarks for the fluid link engine, pitting the zero-allocation
// incremental path against the recompute-everything reference engine
// (FluidOptions::reference_engine) in the same binary, so speedups are
// measured apples-to-apples within one build. Workloads cover the shapes
// that dominate pipeline time: a lone flow, a small saturated mix, a
// BitTorrent-heavy 64-flow swarm, and a saturated link with bufferbloat
// (whose cap refreshes are the incremental engine's worst case).
//
// Record results with:
//   ./bench/perf_fluid --benchmark_format=json > BENCH_fluid.json
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/rng.h"
#include "netsim/fluid.h"
#include "netsim/workload.h"

namespace {

using namespace bblab;

constexpr std::size_t kBins = 2880;  // one day at 30 s
constexpr double kBinWidth = 30.0;

netsim::AccessLink cable_link() {
  netsim::AccessLink link;
  link.down = Rate::from_mbps(16);
  link.up = Rate::from_mbps(2);
  link.rtt_ms = 40;
  link.loss = 0.001;
  return link;
}

/// Deterministic flow soup: `n` flows spread over the day, `bt_share` of
/// them BitTorrent (volume-bound swarm traffic), the rest a web/video/bulk
/// mix. Sorted by start, as the engine requires.
std::vector<netsim::Flow> flow_soup(std::size_t n, double bt_share,
                                    std::uint64_t seed) {
  Rng rng{seed};
  std::vector<netsim::Flow> flows;
  flows.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    netsim::Flow f;
    f.start = rng.uniform(0.0, kBins * kBinWidth * 0.9);
    if (rng.uniform() < bt_share) {
      f.app = netsim::AppKind::kBitTorrent;
      f.direction = rng.bernoulli(0.4) ? netsim::Direction::kUp
                                       : netsim::Direction::kDown;
      f.volume_bytes = rng.uniform(5e7, 5e8);
    } else {
      switch (rng.index(3)) {
        case 0:
          f.app = netsim::AppKind::kWeb;
          f.volume_bytes = rng.uniform(1e5, 5e6);
          break;
        case 1:
          f.app = netsim::AppKind::kVideo;
          f.duration_s = rng.uniform(300.0, 5400.0);
          f.rate_cap = Rate::from_kbps(rng.uniform(1000.0, 5000.0));
          break;
        default:
          f.app = netsim::AppKind::kBulk;
          f.volume_bytes = rng.uniform(1e7, 2e8);
          break;
      }
      f.direction = netsim::Direction::kDown;
    }
    flows.push_back(f);
  }
  std::sort(flows.begin(), flows.end(),
            [](const netsim::Flow& a, const netsim::Flow& b) {
              return a.start < b.start;
            });
  return flows;
}

/// range(0) selects the engine: 0 = incremental (workspace reused across
/// iterations, the steady-state pipeline configuration), 1 = reference.
void run_engine_bench(benchmark::State& state,
                      const std::vector<netsim::Flow>& flows,
                      netsim::FluidOptions options) {
  options.reference_engine = state.range(0) == 1;
  const netsim::FluidLinkSimulator sim{cable_link(), netsim::TcpModel{}, options};
  netsim::FluidWorkspace workspace;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run(flows, 0.0, kBins, kBinWidth, workspace));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(flows.size()));
  state.SetLabel(state.range(0) == 1 ? "reference" : "incremental");
}

void BM_FluidSingleFlow(benchmark::State& state) {
  // One all-day video session: the no-contention fast path.
  netsim::Flow f;
  f.app = netsim::AppKind::kVideo;
  f.direction = netsim::Direction::kDown;
  f.start = 0.0;
  f.duration_s = kBins * kBinWidth;
  f.rate_cap = Rate::from_kbps(4000.0);
  run_engine_bench(state, {f}, {});
}
BENCHMARK(BM_FluidSingleFlow)->Arg(0)->Arg(1);

void BM_FluidSaturated8(benchmark::State& state) {
  // Eight bulk-heavy flows: enough contention that every completion
  // reshuffles the water-fill.
  run_engine_bench(state, flow_soup(8, 0.25, 21), {});
}
BENCHMARK(BM_FluidSaturated8)->Arg(0)->Arg(1);

void BM_FluidBitTorrent64(benchmark::State& state) {
  // The acceptance workload: 64 flows, half of them BitTorrent swarms
  // keeping the link saturated all day. The reference engine pays a sort
  // plus three allocations plus a Mathis-model evaluation per flow-step.
  run_engine_bench(state, flow_soup(64, 0.5, 42), {});
}
BENCHMARK(BM_FluidBitTorrent64)->Arg(0)->Arg(1);

void BM_FluidBufferbloat64(benchmark::State& state) {
  // Same swarm with bufferbloat on: saturation flips RTT inflation on and
  // off, forcing cap refreshes — the incremental engine's worst case.
  netsim::FluidOptions options;
  options.bufferbloat = true;
  run_engine_bench(state, flow_soup(64, 0.5, 42), options);
}
BENCHMARK(BM_FluidBufferbloat64)->Arg(0)->Arg(1);

void BM_FluidGeneratedUserDay(benchmark::State& state) {
  // Realistic diurnal user-day from the workload generator, the shape
  // perf_pipeline spends its time on.
  const SimClock clock{2011};
  const netsim::DiurnalModel diurnal{netsim::DiurnalParams{}, clock};
  const netsim::WorkloadGenerator gen{diurnal};
  netsim::WorkloadParams params;
  params.intensity = 1.0;
  params.bt_sessions_per_day = 1.0;
  Rng rng{7};
  const auto flows = gen.generate(params, cable_link(), 0.0, kDay, rng);
  run_engine_bench(state, flows, {});
}
BENCHMARK(BM_FluidGeneratedUserDay)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
