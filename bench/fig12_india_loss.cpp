// Figure 12 — packet loss CDFs for users in India versus the rest of the
// population.
//
// Paper reference points (§7.2): Indian users experience much higher loss
// rates than the general population; combined with the latency findings
// this explains the country's depressed per-capacity demand.
#include <iostream>

#include "analysis/figures.h"
#include "analysis/report.h"
#include "bench_common.h"

int main() {
  using namespace bblab;
  const auto& ds = bench::bench_dataset();
  const auto fig = analysis::fig12_india_loss(ds);
  auto& out = std::cout;

  analysis::print_banner(out, "Figure 12 — packet loss: India vs rest of population");
  analysis::print_ecdf(out, "loss [%], India", fig.loss_pct_india);
  analysis::print_ecdf(out, "loss [%], other", fig.loss_pct_other);

  analysis::print_compare(out, "median loss, India vs other", "much higher in India",
                          analysis::num(fig.loss_pct_india.inverse(0.5)) + "% vs " +
                              analysis::num(fig.loss_pct_other.inverse(0.5)) + "%");
  analysis::print_compare(out, "Indian users above 1% loss",
                          "a large share (vs ~14% overall)",
                          analysis::pct(1.0 - fig.loss_pct_india(1.0)) + " vs " +
                              analysis::pct(1.0 - fig.loss_pct_other(1.0)));
  return 0;
}
