// Table 8 — packet-loss natural experiment: lower loss rates mean higher
// average demand (no BitTorrent).
//
// Paper reference (§7.2):
//   (0.1%,1%] vs (0,0.01%]:    55.4% (p=5.85e-6)
//   (0.1%,1%] vs (0.01%,0.1%]: 53.4% (p=8.55e-4)
//   (1%,15%]  vs (0,0.01%]:    58.9% (p=2.16e-5)
//   (1%,15%]  vs (0.01%,0.1%]: 53.8% (p=0.0360)
#include <iostream>

#include "analysis/report.h"
#include "analysis/tables.h"
#include "bench_common.h"

int main() {
  using namespace bblab;
  const auto& ds = bench::bench_dataset();
  const auto tab = analysis::tab8_loss_experiment(ds);
  auto& out = std::cout;

  analysis::print_banner(out, "Table 8 — packet loss vs average demand (no BT)");
  for (const auto& row : tab) {
    analysis::print_experiment(out, row.result);
  }

  const char* paper[] = {"55.4%", "53.4%", "58.9%", "53.8%"};
  for (std::size_t i = 0; i < tab.size() && i < 4; ++i) {
    analysis::print_compare(out,
                            tab[i].control_label + " vs " + tab[i].treatment_label +
                                ": % H holds",
                            paper[i], analysis::pct(tab[i].result.test.fraction));
  }
  // The >1% control group shows the strongest effect in the paper.
  if (tab.size() >= 3) {
    analysis::print_compare(
        out, "highest-loss control shows strongest effect", "yes (58.9%)",
        tab[2].result.test.fraction >= tab[0].result.test.fraction ? "yes" : "no");
  }
  return 0;
}
