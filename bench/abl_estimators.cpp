// Ablation — estimator comparison on the §5 price design:
//   1. the paper's natural experiment (per-covariate calipers + one-tailed
//      binomial decision rule),
//   2. QED (same matching, net-outcome score + sign test + effect size),
//   3. propensity-score matching (logistic score, nearest-score pairs)
//      scored with the same binomial rule.
//
// The paper (§8) chose natural experiments over QED, considering its
// groups "sufficiently similar to random assignment"; this harness shows
// what each estimator concludes on identical data.
#include <iostream>

#include "analysis/common.h"
#include "analysis/report.h"
#include "bench_common.h"
#include "causal/experiment.h"
#include "causal/propensity.h"
#include "causal/qed.h"
#include "stats/binomial.h"

int main() {
  using namespace bblab;
  auto& out = std::cout;
  const auto& ds = bench::bench_dataset();
  analysis::print_banner(out, "Ablation — estimators on the price-of-access design");

  const auto records = analysis::dasu_records(ds);
  const auto outcome = [](const dataset::UserRecord& r) {
    return r.usage.mean_down_no_bt.bps();
  };
  const auto cov = analysis::covariates_capacity_quality();
  const auto band = [&](double lo, double hi) {
    return analysis::make_units(
        analysis::filter(records,
                         [&](const dataset::UserRecord& r) {
                           const double p = r.access_price.dollars();
                           return p > lo && p <= hi;
                         }),
        outcome, cov);
  };
  const auto cheap = band(0.0, 25.0);
  const auto expensive = band(60.0, 1e12);
  out << "  pools: " << expensive.size() << " expensive-market users vs "
      << cheap.size() << " cheap-market users\n";

  // 1. Natural experiment (the paper's design).
  causal::ExperimentOptions ne_options;
  ne_options.matcher.absolute_slacks = {1e-9, 1e-9, 2e-4};
  const auto ne = causal::NaturalExperiment{ne_options}.run("natural experiment",
                                                            expensive, cheap);
  analysis::print_experiment(out, ne);

  // 2. QED over the same matched design.
  causal::QedOptions qed_options;
  qed_options.matcher = ne_options.matcher;
  const auto qed = causal::QuasiExperiment{qed_options}.run("QED", expensive, cheap);
  out << "  " << qed.to_string() << "\n";

  // 3. Propensity-score matching + binomial scoring.
  const auto prop = causal::propensity_match(expensive, cheap, {});
  std::uint64_t wins = 0;
  std::uint64_t trials = 0;
  for (const auto& p : prop.pairs) {
    const double t = expensive[p.treated_index].outcome;
    const double c = cheap[p.control_index].outcome;
    if (t == c) continue;
    ++trials;
    if (t > c) ++wins;
  }
  const auto prop_test = stats::binomial_test(wins, trials);
  out << "  propensity: " << prop.pairs.size() << " pairs, "
      << prop_test.to_string() << "\n";

  analysis::print_compare(
      out, "agreement",
      "all three find higher demand in expensive markets",
      std::string{ne.test.fraction > 0.5 ? "NE+" : "NE-"} + " " +
          (qed.net_score > 0 ? "QED+" : "QED-") + " " +
          (prop_test.fraction > 0.5 ? "PSM+" : "PSM-"));
  analysis::print_compare(out, "pairs (NE vs PSM)",
                          "propensity buys sample size, calipers buy balance",
                          std::to_string(ne.pairs) + " vs " +
                              std::to_string(prop.pairs.size()));
  return 0;
}
