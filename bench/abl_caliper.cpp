// Ablation — caliper sensitivity of the price natural experiment.
//
// §3.2 of the paper notes the trade-off: "a tighter caliper will yield a
// potentially more accurate comparison, but will also reduce the number
// of comparisons". This harness sweeps the caliper for the Table 3
// high-price comparison and reports matched-pair counts, detected effect,
// and covariate balance.
#include <array>
#include <cmath>
#include <cstdio>
#include <iostream>

#include "analysis/common.h"
#include "analysis/report.h"
#include "bench_common.h"
#include "causal/experiment.h"

int main() {
  using namespace bblab;
  auto& out = std::cout;
  const auto& ds = bench::bench_dataset();
  analysis::print_banner(out, "Ablation — caliper width vs matching quality (Table 3 design)");

  const auto records = analysis::dasu_records(ds);
  const auto outcome = [](const dataset::UserRecord& r) {
    return r.usage.peak_down_no_bt.bps();
  };
  const auto cov = analysis::covariates_price_experiment();
  const auto band = [&](double lo, double hi) {
    return analysis::make_units(
        analysis::filter(records,
                         [&](const dataset::UserRecord& r) {
                           const double p = r.access_price.dollars();
                           return p > lo && p <= hi;
                         }),
        outcome, cov);
  };
  const auto cheap = band(0.0, 25.0);
  const auto expensive = band(60.0, 1e12);

  out << "  caliper   pairs   %H holds   p-value     worst |SMD|\n";
  std::array<char, 160> buf{};
  for (const double caliper : {0.05, 0.10, 0.25, 0.50, 1.00}) {
    causal::ExperimentOptions options;
    options.matcher.caliper = caliper;
    options.matcher.absolute_slacks = {1e-9, 1e-9, 2e-4, 0.02};
    const causal::NaturalExperiment experiment{options};
    const auto result = experiment.run("caliper sweep", expensive, cheap);
    double worst = 0.0;
    for (const double smd : result.balance) worst = std::max(worst, std::fabs(smd));
    std::snprintf(buf.data(), buf.size(), "  %5.2f   %6zu    %5.1f%%    %-10.3g  %.3f\n",
                  caliper, result.pairs, 100.0 * result.test.fraction,
                  result.test.p_value, worst);
    out << buf.data();
  }
  out << "  expectation: wider calipers buy pairs at the cost of balance;\n"
         "  beyond ~0.5 the detected effect drifts as confounding leaks in.\n";
  return 0;
}
