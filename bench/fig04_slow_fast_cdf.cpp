// Figure 4 — CDFs of mean and peak download usage for individual users on
// their "slow" and "fast" networks (before/after a service switch).
//
// Paper reference points (§3.2):
//   median average usage doubles: 95 kbps -> 189 kbps
//   median peak usage more than triples: 192 kbps -> 634 kbps
#include <iostream>

#include "analysis/figures.h"
#include "analysis/report.h"
#include "bench_common.h"
#include "stats/ranksum.h"

int main() {
  using namespace bblab;
  const auto& ds = bench::bench_dataset();
  const auto fig = analysis::fig4_slow_fast_cdfs(ds);
  auto& out = std::cout;

  analysis::print_banner(out, "Figure 4 — usage on slow vs fast networks (no BT)");
  analysis::print_ecdf(out, "(a) mean usage, slow [kbps]", fig.mean_slow);
  analysis::print_ecdf(out, "(a) mean usage, fast [kbps]", fig.mean_fast);
  analysis::print_ecdf(out, "(b) p95 usage, slow [kbps]", fig.peak_slow);
  analysis::print_ecdf(out, "(b) p95 usage, fast [kbps]", fig.peak_fast);

  const double mean_slow_med = fig.mean_slow.inverse(0.5);
  const double mean_fast_med = fig.mean_fast.inverse(0.5);
  const double peak_slow_med = fig.peak_slow.inverse(0.5);
  const double peak_fast_med = fig.peak_fast.inverse(0.5);

  analysis::print_compare(out, "median mean usage slow -> fast",
                          "95 -> 189 kbps (~2.0x)",
                          analysis::num(mean_slow_med) + " -> " +
                              analysis::num(mean_fast_med) + " kbps (" +
                              analysis::num(mean_fast_med / mean_slow_med) + "x)");
  analysis::print_compare(out, "median peak usage slow -> fast",
                          "192 -> 634 kbps (~3.3x)",
                          analysis::num(peak_slow_med) + " -> " +
                              analysis::num(peak_fast_med) + " kbps (" +
                              analysis::num(peak_fast_med / peak_slow_med) + "x)");

  // Beyond the paper: distribution-level significance of the shift.
  const auto shift =
      stats::rank_sum_test(fig.peak_fast.sorted(), fig.peak_slow.sorted());
  out << "  rank-sum (fast > slow, peak): " << shift.to_string() << "\n";
  return 0;
}
