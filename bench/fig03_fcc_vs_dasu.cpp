// Figure 3 — mean and peak usage by capacity for FCC gateway users versus
// US Dasu users (BitTorrent-inactive periods).
//
// Paper reference points (§3.1):
//   average usage slightly higher for Dasu users (peak-hour sampling bias)
//   peak (p95) usage nearly identical for both populations
//   r = 0.915 (mean), r = 0.905 (peak)
#include <cmath>
#include <iostream>

#include "analysis/figures.h"
#include "analysis/report.h"
#include "bench_common.h"

int main() {
  using namespace bblab;
  const auto& ds = bench::bench_dataset();
  const auto fig = analysis::fig3_fcc_vs_dasu(ds);
  auto& out = std::cout;

  analysis::print_banner(out, "Figure 3 — FCC gateways vs Dasu (US, no BitTorrent)");
  analysis::print_series(out, "(a) mean, FCC", fig.mean_fcc);
  analysis::print_series(out, "(a) mean, Dasu US", fig.mean_dasu_us);
  analysis::print_series(out, "(b) p95, FCC", fig.peak_fcc);
  analysis::print_series(out, "(b) p95, Dasu US", fig.peak_dasu_us);

  analysis::print_compare(out, "pooled r (mean / peak)", "0.915 / 0.905",
                          analysis::num(fig.r_mean) + " / " + analysis::num(fig.r_peak));

  // Per-bin ratios Dasu/FCC: mean should exceed 1 (bias), peak ~ 1.
  double mean_ratio = 0.0;
  double peak_ratio = 0.0;
  int mean_n = 0;
  int peak_n = 0;
  for (const auto& d : fig.mean_dasu_us.points) {
    for (const auto& f : fig.mean_fcc.points) {
      if (d.bin == f.bin && f.usage_mbps.mean > 0) {
        mean_ratio += d.usage_mbps.mean / f.usage_mbps.mean;
        ++mean_n;
      }
    }
  }
  for (const auto& d : fig.peak_dasu_us.points) {
    for (const auto& f : fig.peak_fcc.points) {
      if (d.bin == f.bin && f.usage_mbps.mean > 0) {
        peak_ratio += d.usage_mbps.mean / f.usage_mbps.mean;
        ++peak_n;
      }
    }
  }
  if (mean_n > 0 && peak_n > 0) {
    analysis::print_compare(
        out, "Dasu/FCC usage ratio (mean vs peak)",
        "mean: Dasu slightly higher; peak: nearly identical",
        "mean " + analysis::num(mean_ratio / mean_n) + "x, peak " +
            analysis::num(peak_ratio / peak_n) + "x");
  }
  return 0;
}
