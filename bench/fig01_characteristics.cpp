// Figure 1 — CDFs of download capacity, latency, and packet loss across
// all measured connections.
//
// Paper reference points (IMC'14, §2.2):
//   capacity: median 7.4 Mbps, IQR 3.1-17.4 Mbps, ~10% below 1 Mbps,
//             top 10% above 30 Mbps
//   latency:  "typical" user ~100 ms to nearest NDT server, top 5% > 500 ms
//   loss:     most users < 0.1%, ~14% above 1%, top 1% above 10%
#include <iostream>

#include "analysis/figures.h"
#include "analysis/report.h"
#include "bench_common.h"
#include "stats/quantile.h"

int main() {
  using namespace bblab;
  const auto& ds = bench::bench_dataset();
  const auto fig = analysis::fig1_characteristics(ds);
  auto& out = std::cout;

  analysis::print_banner(out, "Figure 1 — broadband connection characteristics");

  analysis::print_ecdf(out, "(a) download capacity [Mbps]", fig.capacity_mbps);
  analysis::print_compare(out, "median capacity", "7.4 Mbps",
                          analysis::num(fig.capacity_mbps.inverse(0.5)) + " Mbps");
  analysis::print_compare(
      out, "IQR", "3.1 - 17.4 Mbps",
      analysis::num(fig.capacity_mbps.inverse(0.25)) + " - " +
          analysis::num(fig.capacity_mbps.inverse(0.75)) + " Mbps");
  analysis::print_compare(out, "share below 1 Mbps", "~10%",
                          analysis::pct(fig.capacity_mbps(1.0)));
  analysis::print_compare(out, "p90 capacity", ">30 Mbps",
                          analysis::num(fig.capacity_mbps.inverse(0.90)) + " Mbps");

  analysis::print_ecdf(out, "(b) latency [ms]", fig.latency_ms);
  analysis::print_compare(out, "median RTT", "~100 ms",
                          analysis::num(fig.latency_ms.inverse(0.5)) + " ms");
  analysis::print_compare(out, "share above 500 ms", "~5%",
                          analysis::pct(1.0 - fig.latency_ms(500.0)));

  analysis::print_ecdf(out, "(c) packet loss [%]", fig.loss_pct);
  analysis::print_compare(out, "share below 0.1%", "majority",
                          analysis::pct(fig.loss_pct(0.1)));
  analysis::print_compare(out, "share above 1%", "~14%",
                          analysis::pct(1.0 - fig.loss_pct(1.0)));
  analysis::print_compare(out, "share above 10%", "~1%",
                          analysis::pct(1.0 - fig.loss_pct(10.0)));
  return 0;
}
