// The reproduction scorecard: every §9 headline claim checked against the
// shared bench dataset, plus a Markdown rendering suitable for
// EXPERIMENTS.md. Run with BBLAB_MARKDOWN=1 to emit only the Markdown.
#include <cstdlib>
#include <iostream>

#include "analysis/scorecard.h"
#include "bench_common.h"

int main() {
  using namespace bblab;
  const auto& ds = bench::bench_dataset();
  const auto card = analysis::run_scorecard(ds);
  if (std::getenv("BBLAB_MARKDOWN") != nullptr) {
    std::cout << card.to_markdown();
  } else {
    card.print(std::cout);
  }
  return card.pass_rate() >= 0.7 ? 0 : 1;
}
