// Table 1 — within-user natural experiment: does an individual user's
// demand increase after moving to a faster service?
//
// Paper reference points (§3.2):
//   average usage: H holds 66.8% of the time, p = 1.94e-25
//   peak usage:    H holds 70.3% of the time, p = 1.13e-36
#include <iostream>

#include "analysis/report.h"
#include "analysis/tables.h"
#include "bench_common.h"
#include "causal/sensitivity.h"

int main() {
  using namespace bblab;
  const auto& ds = bench::bench_dataset();
  const auto tab = analysis::tab1_upgrade_experiment(ds);
  auto& out = std::cout;

  analysis::print_banner(out,
                         "Table 1 — demand change when switching to a faster service");
  analysis::print_experiment(out, tab.average);
  analysis::print_experiment(out, tab.peak);

  analysis::print_compare(out, "average usage: % H holds", "66.8% (p=1.94e-25)",
                          analysis::pct(tab.average.test.fraction) +
                              " (p=" + analysis::num(tab.average.test.p_value) + ")");
  analysis::print_compare(out, "peak usage: % H holds", "70.3% (p=1.13e-36)",
                          analysis::pct(tab.peak.test.fraction) +
                              " (p=" + analysis::num(tab.peak.test.p_value) + ")");
  analysis::print_compare(
      out, "verdict", "reject H0 for both metrics",
      std::string{tab.average.test.conclusive() ? "reject (avg)" : "CANNOT reject (avg)"} +
          ", " + (tab.peak.test.conclusive() ? "reject (peak)" : "CANNOT reject (peak)"));

  // Beyond the paper: Rosenbaum sensitivity — how much hidden bias would
  // it take to explain the peak-usage result away?
  const auto sensitivity = causal::sensitivity_analysis(tab.peak.test.successes,
                                                        tab.peak.test.trials);
  out << "  sensitivity (peak): " << sensitivity.to_string() << "\n";
  return 0;
}
