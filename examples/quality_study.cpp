// Quality study: the §7 India walkthrough via the public API.
//
// Reproduces the paper's argument chain end to end on synthetic data:
//   1. India's cost-to-upgrade is within 25% of the US's, but its access
//      price is much higher — so by §5 logic Indian demand should be
//      HIGHER at matched capacities.
//   2. Measured instead: Indian users impose LOWER demand most of the time.
//   3. Resolution: their latency and loss distributions dominate everyone
//      else's, and the quality experiments (Tables 7 & 8) show that poor
//      quality suppresses demand — overriding the price effect.
#include <iostream>

#include "analysis/common.h"
#include "analysis/figures.h"
#include "analysis/report.h"
#include "analysis/tables.h"
#include "causal/sensitivity.h"
#include "dataset/generator.h"

int main() {
  using namespace bblab;
  auto& out = std::cout;

  dataset::StudyConfig config;
  config.seed = 17;
  config.population_scale = 0.15;
  config.window_days = 1.0;
  out << "generating study dataset...\n";
  const auto ds = dataset::StudyGenerator{market::World::builtin(), config}.generate();

  // Step 1: the market-side expectation.
  const auto& us = ds.markets.at("US");
  const auto& in = ds.markets.at("IN");
  analysis::print_banner(out, "step 1 — market features (US vs India)");
  out << "  access price: US " << us.access_price.to_string() << " vs India "
      << in.access_price.to_string() << "\n"
      << "  upgrade cost: US $" << analysis::num(us.upgrade_cost_per_mbps)
      << "/Mbps vs India $" << analysis::num(in.upgrade_cost_per_mbps) << "/Mbps\n"
      << "  => by the Section 5 price logic, Indian demand should be HIGHER\n";

  // Step 2: the anomaly.
  analysis::print_banner(out, "step 2 — the anomaly");
  const auto tab7 = analysis::tab7_latency_experiment(ds);
  analysis::print_experiment(out, tab7.us_vs_india);
  out << "  (paper: the US user wins 62% of capacity-matched pairs)\n";

  // Step 3: the explanation — quality.
  analysis::print_banner(out, "step 3 — the explanation");
  const auto fig11 = analysis::fig11_india_latency(ds);
  const auto fig12 = analysis::fig12_india_loss(ds);
  out << "  median RTT: India " << analysis::num(fig11.ndt1113_india.inverse(0.5))
      << " ms vs others " << analysis::num(fig11.ndt1113_other.inverse(0.5)) << " ms\n"
      << "  median loss: India " << analysis::num(fig12.loss_pct_india.inverse(0.5))
      << "% vs others " << analysis::num(fig12.loss_pct_other.inverse(0.5)) << "%\n";
  for (const auto& row : tab7.rows) {
    analysis::print_experiment(out, row.result);
  }
  const auto tab8 = analysis::tab8_loss_experiment(ds);
  for (const auto& row : tab8) {
    analysis::print_experiment(out, row.result);
  }

  // How robust is the headline quality finding to hidden bias?
  if (!tab7.rows.empty() && tab7.rows.front().result.test.trials > 0) {
    const auto& headline = tab7.rows.front().result.test;
    const auto sensitivity =
        causal::sensitivity_analysis(headline.successes, headline.trials);
    out << "\n  sensitivity of the latency finding: " << sensitivity.to_string()
        << "\n";
  }
  out << "\nconclusion: quality suppression overrides the price effect for\n"
         "India — the paper's Section 7 story, recovered from synthetic data.\n";
  return 0;
}
