// Market explorer: inspect a country's synthesized retail broadband
// market — its plan catalog, access price, upgrade cost, price-capacity
// regression, and what a range of representative households would buy.
//
// Usage: market_explorer [ISO_CODE...]   (defaults to BW SA US JP)
#include <array>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "core/rng.h"
#include "market/catalog.h"
#include "market/choice.h"
#include "market/country.h"

int main(int argc, char** argv) {
  using namespace bblab;
  std::vector<std::string> codes;
  for (int i = 1; i < argc; ++i) codes.emplace_back(argv[i]);
  if (codes.empty()) codes = {"BW", "SA", "US", "JP"};

  const auto world = market::World::builtin();
  std::array<char, 200> buf{};

  for (const auto& code : codes) {
    if (!world.contains(code)) {
      std::cout << "unknown country code: " << code << "\n";
      continue;
    }
    const auto& country = world.at(code);
    Rng rng{2014};
    const auto catalog = market::PlanCatalog::generate(country, rng);

    std::cout << "\n=== " << country.name << " (" << code << ", "
              << market::region_label(country.region) << ") ===\n";
    std::snprintf(buf.data(), buf.size(),
                  "GDP per capita (PPP): $%.0f  |  %zu retail plans\n",
                  country.gdp_per_capita_ppp, catalog.size());
    std::cout << buf.data();

    std::cout << "plans (by capacity):\n";
    for (const auto& plan : catalog.by_capacity()) {
      std::cout << "  " << plan.to_string() << "\n";
    }

    const auto access = catalog.access_price();
    const auto fit = catalog.price_capacity_fit();
    std::snprintf(buf.data(), buf.size(),
                  "access price (cheapest >=1 Mbps): %s  |  upgrade cost: "
                  "$%.2f/Mbps (r=%.2f)\n",
                  access ? access->to_string().c_str() : "n/a", fit.slope, fit.r);
    std::cout << buf.data();

    // What would households of different means buy here?
    std::vector<market::Household> probes;
    Rng hrng{7};
    for (int i = 0; i < 300; ++i) probes.push_back(sample_household(country, hrng));
    const auto choice = market::ChoiceModel::calibrated(country, catalog, probes);

    std::cout << "representative household choices:\n";
    struct Persona {
      const char* label;
      double need;
      double budget;
    };
    for (const auto& [label, need, budget] :
         {Persona{"light user, tight budget", 1.0, 15.0},
          Persona{"streaming family", 8.0, 60.0},
          Persona{"power household", 30.0, 150.0}}) {
      market::Household h;
      h.need_mbps = need;
      h.budget = MoneyPpp::usd(budget);
      h.value_scale = 0.6 * budget;
      const auto plan = choice.choose(h, catalog);
      std::snprintf(buf.data(), buf.size(),
                    "  %-26s (need %4.1f Mbps, budget $%5.1f) -> %s\n", label, need,
                    budget, plan ? plan->to_string().c_str() : "nothing affordable");
      std::cout << buf.data();
    }
  }
  return 0;
}
