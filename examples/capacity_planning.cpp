// Capacity planning: the operator-facing use case from the paper's
// discussion (§9) — "as service capacities continue to increase, network
// operators can plan on higher over-provisioning rates".
//
// For a hypothetical ISP we sweep the offered service tier and report the
// expected per-subscriber mean/p95 demand and the implied aggregation
// over-subscription ratio, using the library's demand model end to end.
#include <array>
#include <cstdio>
#include <iostream>
#include <vector>

#include "behavior/demand.h"
#include "core/rng.h"
#include "measurement/collectors.h"
#include "netsim/fluid.h"
#include "netsim/workload.h"
#include "stats/descriptive.h"
#include "stats/quantile.h"

int main() {
  using namespace bblab;
  constexpr int kSubscribersPerTier = 120;
  const std::vector<double> tiers{1, 4, 10, 25, 50, 100};

  const SimClock clock{2014};
  const netsim::DiurnalModel diurnal{netsim::DiurnalParams{}, clock};
  const netsim::WorkloadGenerator workload{diurnal};
  const behavior::DemandModel demand;
  const measurement::GatewayCollector gateway;
  Rng root{7};

  std::cout << "simulating " << kSubscribersPerTier << " subscribers per tier, "
            << "2 days each...\n\n";
  std::cout << "  tier      mean demand    p95 demand    p95 util   safe oversub*\n";

  std::array<char, 160> buf{};
  for (const double tier_mbps : tiers) {
    std::vector<double> means;
    std::vector<double> peaks;
    for (int s = 0; s < kSubscribersPerTier; ++s) {
      Rng rng = root.fork(static_cast<std::uint64_t>(tier_mbps * 1000) + s);
      netsim::AccessLink link;
      link.down = Rate::from_mbps(tier_mbps);
      link.up = Rate::from_mbps(tier_mbps / 8);
      link.rtt_ms = rng.lognormal(std::log(45.0), 0.4);
      link.loss = rng.lognormal(std::log(8e-4), 1.0);

      behavior::SubscriberContext ctx;
      ctx.archetype = behavior::ArchetypeMix::fcc().sample(rng);
      // Households on this tier: need scattered around the tier itself.
      ctx.need_mbps = rng.lognormal(std::log(tier_mbps * 0.9), 0.7);
      ctx.link = link;
      ctx.bt_user = behavior::traits_of(ctx.archetype).bt_sessions_per_day > 0;

      const auto wp = demand.workload_params(ctx, rng);
      const auto flows = workload.generate(wp, link, 0.0, 2 * kDay, rng);
      const netsim::FluidLinkSimulator sim{link};
      const auto truth = sim.run(flows, 0.0, 2 * 2880, 30.0);
      const auto summary = measurement::summarize(gateway.collect(truth));
      means.push_back(summary.mean_down.mbps());
      peaks.push_back(summary.peak_down.mbps());
    }
    const double mean = stats::mean(means);
    const double p95 = stats::mean(peaks);
    // Rule-of-thumb oversubscription: tier / average of per-user p95
    // (how many subscribers can share one tier-worth of backhaul).
    const double oversub = p95 > 0 ? tier_mbps / p95 : 0.0;
    std::snprintf(buf.data(), buf.size(),
                  "  %5.0f Mbps  %8.3f Mbps  %9.3f Mbps  %7.1f%%   %6.1f : 1\n",
                  tier_mbps, mean, p95, 100.0 * p95 / tier_mbps, oversub);
    std::cout << buf.data();
  }
  std::cout << "\n* subscribers per tier-equivalent of backhaul at mean p95 demand.\n"
            << "The law of diminishing returns (paper §3) appears as the rising\n"
            << "safe-oversubscription column: faster tiers use ever-smaller\n"
            << "fractions of their link.\n";
  return 0;
}
