// Dataset export: generate a study dataset and persist it as CSV files
// (user records for both vantage-point populations, plus every market's
// plan catalog) for downstream analysis in R / pandas / spreadsheets.
//
// Usage: dataset_export [output_dir]   (default ./bblab_export)
#include <filesystem>
#include <fstream>
#include <iostream>

#include "dataset/csv.h"
#include "dataset/generator.h"

int main(int argc, char** argv) {
  using namespace bblab;
  const std::filesystem::path dir = argc > 1 ? argv[1] : "bblab_export";
  std::filesystem::create_directories(dir);

  dataset::StudyConfig config;
  config.seed = 7;
  config.population_scale = 0.08;
  config.window_days = 1.0;
  std::cout << "generating study dataset...\n";
  const auto ds = dataset::StudyGenerator{market::World::builtin(), config}.generate();

  {
    std::ofstream out{dir / "dasu_users.csv"};
    dataset::write_user_records(out, ds.dasu);
  }
  {
    std::ofstream out{dir / "fcc_users.csv"};
    dataset::write_user_records(out, ds.fcc);
  }
  {
    std::vector<market::ServicePlan> all_plans;
    for (const auto& [code, snap] : ds.markets) {
      all_plans.insert(all_plans.end(), snap.catalog.plans().begin(),
                       snap.catalog.plans().end());
    }
    std::ofstream out{dir / "plans.csv"};
    dataset::write_plans(out, all_plans);
  }

  std::cout << "wrote " << ds.dasu.size() << " Dasu records, " << ds.fcc.size()
            << " FCC records, and the plan survey to " << dir << "/\n";

  // Round-trip check: read one file back and confirm the count.
  std::ifstream in{dir / "dasu_users.csv"};
  const std::string text{std::istreambuf_iterator<char>{in},
                         std::istreambuf_iterator<char>{}};
  const auto back = dataset::read_user_records(text);
  std::cout << "round-trip verified: " << back.size() << " records parsed back\n";
  return back.size() == ds.dasu.size() ? 0 : 1;
}
