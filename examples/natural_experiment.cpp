// Natural-experiment walkthrough: build a custom matched-pair study on
// generated data, inspect the matching quality, and contrast it with a
// naive unmatched comparison — the methodological core of the paper.
//
// The example asks a question the paper does not tabulate directly: do
// BitTorrent-habituated users impose higher *non-BitTorrent* peak demand
// than otherwise similar non-BT users? (A lifestyle confounder check.)
#include <array>
#include <cstdio>
#include <iostream>

#include "analysis/common.h"
#include "causal/experiment.h"
#include "dataset/generator.h"

int main() {
  using namespace bblab;

  dataset::StudyConfig config;
  config.seed = 99;
  config.population_scale = 0.12;
  config.window_days = 1.0;
  std::cout << "generating study dataset...\n";
  const auto ds = dataset::StudyGenerator{market::World::builtin(), config}.generate();
  const auto records = analysis::dasu_records(ds);
  std::cout << "dataset: " << records.size() << " users\n";

  // Outcome: peak demand with BitTorrent excluded. Confounders: capacity,
  // connection quality, and market features.
  const auto outcome = [](const dataset::UserRecord& r) {
    return r.usage.peak_down_no_bt.bps();
  };
  auto covariates = analysis::covariates_price_experiment();  // cap, rtt, loss, cost

  const auto bt_users = analysis::filter(
      records, [](const dataset::UserRecord& r) { return r.bt_user; });
  const auto non_bt = analysis::filter(
      records, [](const dataset::UserRecord& r) { return !r.bt_user; });
  const auto treated = analysis::make_units(bt_users, outcome, covariates);
  const auto control = analysis::make_units(non_bt, outcome, covariates);
  std::cout << "pools: " << treated.size() << " BT users vs " << control.size()
            << " non-BT users\n";

  // Naive comparison: fraction of random cross pairs where the BT user's
  // no-BT demand is higher (no matching — confounded by market mix).
  std::size_t naive_wins = 0;
  std::size_t naive_trials = 0;
  for (std::size_t i = 0; i < treated.size() && i < 2000; ++i) {
    for (std::size_t j = 0; j < control.size() && j < 50; ++j) {
      if (treated[i].outcome == control[j].outcome) continue;
      ++naive_trials;
      if (treated[i].outcome > control[j].outcome) ++naive_wins;
    }
  }
  std::array<char, 160> buf{};
  std::snprintf(buf.data(), buf.size(), "naive (unmatched) comparison: %.1f%% favor BT users\n",
                naive_trials ? 100.0 * static_cast<double>(naive_wins) /
                                   static_cast<double>(naive_trials)
                             : 0.0);
  std::cout << buf.data();

  // The proper natural experiment with 25% calipers.
  const causal::NaturalExperiment experiment{};
  const auto result = experiment.run("BT habit vs non-BT peak demand", treated, control);
  std::cout << "matched experiment:   " << result.to_string() << "\n";

  std::cout << "covariate balance (standardized mean differences after matching):\n";
  const char* names[] = {"capacity", "rtt", "loss", "upgrade cost"};
  for (std::size_t i = 0; i < result.balance.size() && i < 4; ++i) {
    std::snprintf(buf.data(), buf.size(), "  %-12s %+0.3f %s\n", names[i],
                  result.balance[i],
                  std::abs(result.balance[i]) < 0.1 ? "(balanced)" : "(imbalanced!)");
    std::cout << buf.data();
  }

  std::cout << "\ninterpretation: if the matched fraction is near 50%, the naive\n"
               "difference was driven by who adopts BitTorrent (market and\n"
               "capacity mix), not by the habit itself.\n";
  return 0;
}
