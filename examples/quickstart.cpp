// Quickstart: generate a small global study dataset, run one natural
// experiment, and print the headline numbers.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>

#include "analysis/figures.h"
#include "analysis/report.h"
#include "analysis/tables.h"
#include "core/logging.h"
#include "dataset/generator.h"

int main() {
  using namespace bblab;
  set_log_level(LogLevel::kInfo);

  // 1. The world: ~60 country market profiles with retail plan catalogs.
  const auto world = market::World::builtin();
  std::cout << "world: " << world.size() << " countries\n";

  // 2. Generate a (small) synthetic study: households pick plans, traffic
  //    flows through simulated access links, Dasu/FCC instruments observe.
  dataset::StudyConfig config;
  config.seed = 1;
  config.population_scale = 0.10;  // ~1200 Dasu users
  config.window_days = 1.0;
  const auto ds = dataset::StudyGenerator{world, config}.generate();
  std::cout << "dataset: " << ds.dasu.size() << " Dasu users, " << ds.fcc.size()
            << " FCC gateways, " << ds.upgrades.size() << " upgrade pairs\n";

  // 3. Characterize the population (paper Fig. 1).
  const auto fig1 = analysis::fig1_characteristics(ds);
  std::cout << "median capacity: " << fig1.capacity_mbps.inverse(0.5) << " Mbps, "
            << "median RTT: " << fig1.latency_ms.inverse(0.5) << " ms\n";

  // 4. Does capacity drive demand? (paper Table 1: within-user upgrades)
  const auto tab1 = analysis::tab1_upgrade_experiment(ds);
  std::cout << "upgrade experiment (peak demand): " << tab1.peak.to_string() << "\n";

  // 5. Does price drive demand? (paper Table 3)
  const auto tab3 = analysis::tab3_price_experiment(ds);
  std::cout << "price experiment: " << tab3.mid.to_string() << "\n";
  return 0;
}
